// The cross-iteration experience pool of the search-as-teacher loop
// (Balsa's "experience" set): every plan the teacher search ever
// discovered, deduplicated by (query structural fingerprint, action
// sequence) so a plan re-discovered on every iteration is stored exactly
// once and cannot overweight the demonstration distribution. The pool
// answers "cheapest known plan per query" (BestPerQuery / BestFor) and
// round-trips through a plain-text format so a refinement run can be
// checkpointed and resumed.
#ifndef HFQ_RL_EXPERIENCE_POOL_H_
#define HFQ_RL_EXPERIENCE_POOL_H_

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace hfq {

/// One discovered plan: the env action sequence that produced it and the
/// env's FinalCost for it, keyed by the query's structural fingerprint.
struct PlanExperience {
  uint64_t fingerprint = 0;
  std::vector<int> actions;
  double cost = 0.0;
};

/// Insertion-ordered, deduplicated store of discovered plans.
class ExperiencePool {
 public:
  /// Stores `experience` unless an identical (fingerprint, actions) pair is
  /// already present; returns whether it was stored. On a duplicate the
  /// stored copy keeps its original cost (replays of one action sequence
  /// are deterministic, so the costs agree anyway).
  bool Add(PlanExperience experience);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const PlanExperience& at(size_t i) const { return items_[i]; }

  /// The cheapest known plan for `fingerprint` (strictly lowest cost; ties
  /// keep the earliest inserted), or nullptr when none is known.
  const PlanExperience* BestFor(uint64_t fingerprint) const;

  /// The cheapest known plan of every fingerprint, in first-seen
  /// fingerprint order — the deterministic demonstration set one teacher
  /// iteration trains on.
  std::vector<const PlanExperience*> BestPerQuery() const;

  /// Plain-text persistence; Load rebuilds through Add so the dedup and
  /// best-per-query indexes are reconstructed, and costs round-trip
  /// exactly (%.17g).
  Status Save(std::ostream& out) const;
  static Result<ExperiencePool> Load(std::istream& in);

 private:
  std::vector<PlanExperience> items_;
  /// Content hashes of every stored (fingerprint, actions) pair.
  std::unordered_set<uint64_t> keys_;
  /// fingerprint -> index into items_ of its cheapest plan.
  std::unordered_map<uint64_t, size_t> best_;
  /// Fingerprints in first-seen order (drives BestPerQuery ordering).
  std::vector<uint64_t> fingerprint_order_;
};

}  // namespace hfq

#endif  // HFQ_RL_EXPERIENCE_POOL_H_
