// System-R style DPsize join enumeration: optimal w.r.t. the cost model
// over bushy trees, avoiding cross products unless the join graph forces
// them (PostgreSQL behaviour). Disconnected queries are planned per
// connected component, then the component plans are cross-combined by an
// exact DP over components — the same restricted plan space the learned
// environments and GEQO search (components finish internally before any
// cross product), so DP stays the cost floor of the regret metrics.
#include <bit>
#include <cstdint>
#include <map>
#include <vector>

#include "optimizer/optimizer.h"
#include "util/check.h"

namespace hfq {
namespace {

// Connected components of the query's join graph, in lowest-member order.
std::vector<RelSet> JoinGraphComponents(const Query& query) {
  std::vector<RelSet> components;
  RelSet seen = 0;
  for (int rel = 0; rel < query.num_relations(); ++rel) {
    if (seen & RelSetOf(rel)) continue;
    RelSet comp = RelSetOf(rel);
    for (;;) {
      RelSet next = comp | query.NeighborsOfSet(comp);
      if (next == comp) break;
      comp = next;
    }
    components.push_back(comp);
    seen |= comp;
  }
  return components;
}

}  // namespace

Result<PlanNodePtr> TraditionalOptimizer::EnumerateDp(const Query& query) {
  const int n = query.num_relations();
  HFQ_CHECK(n >= 2);
  const RelSet all = RelSetAll(n);
  const std::vector<RelSet> components = JoinGraphComponents(query);

  // best[S] = cheapest annotated plan joining exactly S. Multi-component
  // subsets are never materialized here: relations of different
  // components can only ever meet through the component-combination DP
  // below, exactly like the learned envs (cross products are forced only
  // once every component is internally complete).
  std::map<RelSet, PlanNodePtr> best;
  for (int rel = 0; rel < n; ++rel) {
    best[RelSetOf(rel)] = BestAccessPath(query, rel);
  }

  // Enumerate subsets in increasing popcount order. Iterating the mask
  // value ascending guarantees every proper submask is visited before its
  // superset, which is all DPsize needs.
  for (RelSet s = 1; s <= all; ++s) {
    if (RelSetCount(s) < 2) continue;
    if (components.size() > 1) {
      bool within_component = false;
      for (RelSet comp : components) {
        if ((s & ~comp) == 0) {
          within_component = true;
          break;
        }
      }
      if (!within_component) continue;
    }

    auto consider = [&](RelSet s1, RelSet s2) {
      auto it1 = best.find(s1);
      auto it2 = best.find(s2);
      if (it1 == best.end() || it2 == best.end()) return;
      PlanNodePtr candidate = BestJoinEitherOrientation(
          query, it1->second->Clone(), it2->second->Clone());
      auto it = best.find(s);
      if (it == best.end() || candidate->est_cost < it->second->est_cost) {
        best[s] = std::move(candidate);
      }
    };

    // First pass: only splits connected by at least one join predicate.
    for (RelSet s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      RelSet s2 = s & ~s1;
      if (s1 > s2) continue;  // Unordered pairs (orientation handled inside).
      if (query.JoinPredsBetween(s1, s2).empty()) continue;
      consider(s1, s2);
    }
    // Second pass (only if the subset admits no predicate-connected split):
    // cross products, so within-component disconnected subsets still plan.
    if (best.find(s) == best.end()) {
      for (RelSet s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
        RelSet s2 = s & ~s1;
        if (s1 > s2) continue;
        consider(s1, s2);
      }
    }
  }

  if (components.size() == 1) {
    auto it = best.find(all);
    if (it == best.end()) {
      return Status::Internal("DP enumeration failed to cover all relations");
    }
    return std::move(it->second);
  }

  // Cross-combination DP over the component plans: every component's
  // output cardinality is fixed by the cardinality model (it depends on
  // the relation set, not the plan), so component-optimal subplans are
  // globally optimal and only the cross-join shape remains to optimize.
  const int k = static_cast<int>(components.size());
  HFQ_CHECK(k <= 20);  // 2^k combination states; queries are far smaller.
  std::vector<PlanNodePtr> comp_best(static_cast<size_t>(1) << k);
  for (int c = 0; c < k; ++c) {
    auto it = best.find(components[static_cast<size_t>(c)]);
    if (it == best.end()) {
      return Status::Internal("DP enumeration failed to cover a component");
    }
    comp_best[static_cast<size_t>(1) << c] = std::move(it->second);
  }
  const uint32_t full = (static_cast<uint32_t>(1) << k) - 1;
  for (uint32_t m = 1; m <= full; ++m) {
    if (std::popcount(m) < 2) continue;
    PlanNodePtr& slot = comp_best[m];
    for (uint32_t m1 = (m - 1) & m; m1 != 0; m1 = (m1 - 1) & m) {
      uint32_t m2 = m & ~m1;
      if (m1 > m2) continue;
      PlanNodePtr candidate = BestJoinEitherOrientation(
          query, comp_best[m1]->Clone(), comp_best[m2]->Clone());
      if (slot == nullptr || candidate->est_cost < slot->est_cost) {
        slot = std::move(candidate);
      }
    }
  }
  return std::move(comp_best[full]);
}

Result<PlanNodePtr> TraditionalOptimizer::EnumerateGreedy(
    const Query& query) {
  const int n = query.num_relations();
  HFQ_CHECK(n >= 2);
  // Greedy Operator Ordering: repeatedly join the pair with the smallest
  // estimated output, preferring predicate-connected pairs.
  std::vector<PlanNodePtr> forest;
  forest.reserve(static_cast<size_t>(n));
  for (int rel = 0; rel < n; ++rel) {
    forest.push_back(BestAccessPath(query, rel));
  }
  CardinalitySource* cards = cost_model_->cards();
  while (forest.size() > 1) {
    int best_i = -1, best_j = -1;
    double best_rows = 0.0;
    bool best_connected = false;
    for (size_t i = 0; i < forest.size(); ++i) {
      for (size_t j = i + 1; j < forest.size(); ++j) {
        bool connected =
            !query.JoinPredsBetween(forest[i]->rels, forest[j]->rels).empty();
        if (best_connected && !connected) continue;
        double rows = cards->Rows(query, forest[i]->rels | forest[j]->rels);
        bool better = best_i < 0 || (connected && !best_connected) ||
                      rows < best_rows;
        if (better) {
          best_i = static_cast<int>(i);
          best_j = static_cast<int>(j);
          best_rows = rows;
          best_connected = connected;
        }
      }
    }
    PlanNodePtr joined = BestJoinEitherOrientation(
        query, std::move(forest[static_cast<size_t>(best_i)]),
        std::move(forest[static_cast<size_t>(best_j)]));
    forest.erase(forest.begin() + best_j);
    forest[static_cast<size_t>(best_i)] = std::move(joined);
  }
  return std::move(forest[0]);
}

}  // namespace hfq
