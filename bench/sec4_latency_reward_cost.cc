// SEC4-LAT — Section 4, "Performance Evaluation Overhead" (and footnote 2):
// with latency as the reward signal, an untrained agent's early plans are
// so slow that training from scratch is prohibitive — "the initial query
// plans produced could not be executed in any reasonable amount of time."
// Our latency simulator can *price* those plans without running them, so
// this bench quantifies the claim: the total (simulated) execution time an
// agent would have to pay for its first K random episodes, vs what the
// expert's plans cost on the same queries.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/full_env.h"

using namespace hfq;         // NOLINT
using namespace hfq::bench;  // NOLINT

int main() {
  PrintHeader(
      "SEC4-LAT  the price of latency-as-reward from scratch",
      "early random plans take hours vs seconds — executing them for "
      "reward is prohibitive");

  auto engine = MakeEngine();
  std::vector<Query> workload =
      MakeLatencyWorkload(engine.get(), /*count=*/10, /*min_rels=*/8,
                          /*max_rels=*/12, /*seed=*/777);

  RejoinFeaturizer featurizer(13, &engine->estimator());
  NegLogLatencyReward reward(&engine->latency(), &engine->cost_model());
  FullEnvConfig config;
  config.allow_cross_products = true;  // Naive agent: nothing is masked.
  FullPipelineEnv env(&featurizer, &engine->expert(), &reward, config);

  const int kEpisodes = 500;
  Rng rng(99);
  std::vector<double> latencies;
  double total_ms = 0.0;
  for (int e = 0; e < kEpisodes; ++e) {
    const Query& q = workload[static_cast<size_t>(e) % workload.size()];
    env.SetQuery(&q);
    env.Reset();
    while (!env.Done()) {
      std::vector<bool> mask = env.ActionMask();
      std::vector<int> valid;
      for (int a = 0; a < env.action_dim(); ++a) {
        if (mask[static_cast<size_t>(a)]) valid.push_back(a);
      }
      env.Step(rng.Choice(valid));
    }
    double ms = engine->latency().SimulateMs(q, *env.FinalPlan());
    latencies.push_back(ms);
    total_ms += ms;
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    return latencies[static_cast<size_t>(p * (latencies.size() - 1))];
  };

  double expert_total = 0.0;
  double expert_max = 0.0;
  for (const Query& q : workload) {
    auto expert = engine->RunExpert(q);
    HFQ_CHECK(expert.ok());
    expert_total += expert->latency_ms;
    expert_max = std::max(expert_max, expert->latency_ms);
  }
  double expert_mean = expert_total / static_cast<double>(workload.size());

  std::printf("simulated latency of %d untrained-agent plans:\n", kEpisodes);
  std::printf("  median %s   p90 %s\n  p99 %s   worst %s\n",
              HumanTime(pct(0.5)).c_str(), HumanTime(pct(0.9)).c_str(),
              HumanTime(pct(0.99)).c_str(),
              HumanTime(latencies.back()).c_str());
  std::printf("  total time to 'execute' all %d plans for their rewards: %s\n",
              kEpisodes, HumanTime(total_ms).c_str());
  std::printf("expert plans on the same queries: mean %s, max %s\n",
              HumanTime(expert_mean).c_str(), HumanTime(expert_max).c_str());
  PrintRule(78);
  std::printf(
      "claim check: the median random plan already runs %.0fx longer than "
      "the\nexpert mean; the tail is unexecutable (%s). Collecting latency\n"
      "rewards for 500 episodes costs %s of query execution, vs %s\n"
      "if every plan were expert-quality — training on raw latency from "
      "scratch\nis prohibitive, exactly as Section 4 argues.\n",
      pct(0.5) / expert_mean, HumanTime(latencies.back()).c_str(),
      HumanTime(total_ms).c_str(),
      HumanTime(kEpisodes * expert_mean).c_str());
  return 0;
}
