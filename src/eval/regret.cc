#include "eval/regret.h"

#include <algorithm>
#include <cmath>

namespace hfq {
namespace {

// Relative slack for win/tie detection: DP compared against itself must
// count as a win despite fp round-off in identical arithmetic.
constexpr double kWinEps = 1e-12;

double Regret(double metric, double baseline) {
  if (baseline <= 0.0) return 0.0;
  return metric / baseline - 1.0;
}

}  // namespace

SummaryStats SummaryStats::Of(std::vector<double> values) {
  SummaryStats stats;
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(n);
  stats.median = n % 2 == 1
                     ? values[n / 2]
                     : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  const size_t rank = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  stats.p95 = values[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
  stats.max = values[n - 1];
  return stats;
}

const char* PlannerName(Planner planner) {
  switch (planner) {
    case Planner::kLearned:
      return "learned";
    case Planner::kDp:
      return "dp";
    case Planner::kGeqo:
      return "geqo";
  }
  return "?";
}

PlannerStats ComputePlannerStats(
    const std::vector<HandsFreeOptimizer::QueryEvaluation>& rows,
    Planner planner) {
  PlannerStats stats;
  stats.num_queries = static_cast<int>(rows.size());
  std::vector<double> cost_regrets, latency_regrets;
  cost_regrets.reserve(rows.size());
  latency_regrets.reserve(rows.size());
  int cost_wins = 0, latency_wins = 0;
  double planning_sum = 0.0;
  for (const auto& row : rows) {
    double cost = 0.0, latency = 0.0, planning = 0.0;
    switch (planner) {
      case Planner::kLearned:
        cost = row.learned_cost;
        latency = row.learned_latency_ms;
        planning = row.learned_planning_ms;
        break;
      case Planner::kDp:
        cost = row.dp_cost;
        latency = row.dp_latency_ms;
        planning = row.dp_planning_ms;
        break;
      case Planner::kGeqo:
        cost = row.geqo_cost;
        latency = row.geqo_latency_ms;
        planning = row.geqo_planning_ms;
        break;
    }
    cost_regrets.push_back(Regret(cost, row.baseline_cost));
    latency_regrets.push_back(Regret(latency, row.baseline_latency_ms));
    if (cost <= row.baseline_cost * (1.0 + kWinEps)) ++cost_wins;
    if (latency <= row.baseline_latency_ms * (1.0 + kWinEps)) ++latency_wins;
    planning_sum += planning;
  }
  stats.cost_regret = SummaryStats::Of(std::move(cost_regrets));
  stats.latency_regret = SummaryStats::Of(std::move(latency_regrets));
  if (!rows.empty()) {
    const double n = static_cast<double>(rows.size());
    stats.win_rate_cost = static_cast<double>(cost_wins) / n;
    stats.win_rate_latency = static_cast<double>(latency_wins) / n;
    stats.mean_planning_ms = planning_sum / n;
  }

  // Measured-execution summary over the rows where both plans actually
  // ran. Only the learned planner's plan is executed besides the
  // baseline, so the baseline planners summarize their own (baseline)
  // measurement — their exec_regret is identically zero.
  std::vector<double> exec_regrets;
  double exec_sum = 0.0;
  for (const auto& row : rows) {
    if (!row.exec_ran) continue;
    const double ms = planner == Planner::kLearned ? row.learned_exec_ms
                                                   : row.baseline_exec_ms;
    exec_regrets.push_back(Regret(ms, row.baseline_exec_ms));
    exec_sum += ms;
  }
  stats.num_exec = static_cast<int>(exec_regrets.size());
  if (!exec_regrets.empty()) {
    stats.mean_exec_ms = exec_sum / static_cast<double>(exec_regrets.size());
    stats.exec_regret = SummaryStats::Of(std::move(exec_regrets));
  }
  return stats;
}

}  // namespace hfq
