// Materializes synthetic data for a catalog. The generator realizes each
// column's declared distribution (serial ids, uniform/Zipf categoricals,
// skewed foreign keys, injected correlations). Determinism: identical
// (catalog, seed) inputs produce identical databases.
#ifndef HFQ_STORAGE_DATA_GENERATOR_H_
#define HFQ_STORAGE_DATA_GENERATOR_H_

#include <memory>

#include "catalog/catalog.h"
#include "storage/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace hfq {

/// Materialization knobs independent of the catalog's declared schema.
struct DataGenOptions {
  DataGenOptions() {}
  /// Multiplies every column's declared Zipf / FK-reference skew at
  /// materialization time: 0 forces fully uniform data, 1 reproduces the
  /// declared distributions bit-for-bit (the historic behaviour), and
  /// values > 1 sharpen the skew. The evaluation harness sweeps this knob
  /// to build {uniform, skewed} variants of one schema.
  double skew_scale = 1.0;
};

/// Generates a database for `catalog`. Builds all catalog indexes.
class DataGenerator {
 public:
  explicit DataGenerator(uint64_t seed,
                         DataGenOptions options = DataGenOptions())
      : seed_(seed), options_(options) {}

  /// Generates all tables and their indexes. The returned Database keeps a
  /// pointer to `catalog`, which must outlive it.
  Result<std::unique_ptr<Database>> Generate(const Catalog& catalog);

 private:
  uint64_t seed_;
  DataGenOptions options_;
};

}  // namespace hfq

#endif  // HFQ_STORAGE_DATA_GENERATOR_H_
