// Parallel rollout-collection contract tests:
//   * the 1-worker parallel path reproduces the (pre-threadpool) serial
//     trainer bit-for-bit — trajectories and final network weights;
//   * an N-worker run is deterministic for a fixed seed and worker count;
//   * parallel demonstration collection equals the serial pass;
//   * the facade's workload-parallel Compare equals per-query Compare.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "core/hands_free.h"
#include "core/reward.h"
#include "rejoin/join_env.h"
#include "rejoin/rejoin.h"
#include "tests/test_common.h"
#include "workload/generator.h"

namespace hfq {
namespace {

void ExpectEpisodesEqual(const Episode& a, const Episode& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const Transition& x = a.steps[i];
    const Transition& y = b.steps[i];
    EXPECT_EQ(x.action, y.action);
    EXPECT_EQ(x.old_prob, y.old_prob);  // Bitwise.
    EXPECT_EQ(x.reward, y.reward);
    ASSERT_EQ(x.state.size(), y.state.size());
    for (size_t j = 0; j < x.state.size(); ++j) {
      EXPECT_EQ(x.state[j], y.state[j]);
    }
    EXPECT_EQ(x.mask, y.mask);
  }
}

void ExpectNetsEqual(Mlp& a, Mlp& b) {
  auto pa = a.Params();
  auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_TRUE(pa[i]->SameShape(*pb[i]));
    for (int64_t j = 0; j < pa[i]->size(); ++j) {
      EXPECT_EQ(pa[i]->data()[j], pb[i]->data()[j]);
    }
  }
}

class ParallelRolloutTest : public ::testing::Test {
 protected:
  ParallelRolloutTest()
      : featurizer_(kN, &testing::SharedEngine().estimator()),
        // Thread-safe reward: PhysicalizeJoinTree + cost annotation only
        // touch the internally synchronized substrate.
        reward_fn_([](const Query& q, const JoinTreeNode& tree) {
          auto plan =
              testing::SharedEngine().expert().PhysicalizeJoinTree(q, tree);
          HFQ_CHECK(plan.ok());
          return 1e5 / std::max(1.0, (*plan)->est_cost);
        }),
        env_(&featurizer_, reward_fn_) {}

  Query MakeQuery(int n, uint64_t seed, const std::string& name) {
    WorkloadGenerator gen(&testing::SharedEngine().catalog(), seed);
    auto q = gen.GenerateQuery(n, name);
    HFQ_CHECK(q.ok());
    return std::move(*q);
  }

  std::vector<Query> MakeWorkload(uint64_t seed, const std::string& prefix) {
    std::vector<Query> workload;
    workload.push_back(MakeQuery(5, seed, prefix + "_a"));
    workload.push_back(MakeQuery(6, seed + 1, prefix + "_b"));
    workload.push_back(MakeQuery(4, seed + 2, prefix + "_c"));
    return workload;
  }

  static constexpr int kN = 8;
  RejoinFeaturizer featurizer_;
  JoinRewardFn reward_fn_;
  JoinOrderEnv env_;
};

TEST_F(ParallelRolloutTest, OneWorkerMatchesSerialReferenceBitForBit) {
  std::vector<Query> workload = MakeWorkload(100, "eq");
  constexpr int kEpisodes = 50;
  constexpr uint64_t kSeed = 33;
  RejoinConfig config;
  config.pg.hidden_dims = {24, 24};
  config.episodes_per_update = 8;
  config.num_rollout_workers = 1;

  // The trainer's (round-based, workspace-inference) path.
  RejoinTrainer trainer(&env_, config, kSeed);
  std::vector<Episode> trainer_trajs;
  trainer.set_trajectory_sink([&trainer_trajs](int e, const Episode& ep) {
    ASSERT_EQ(e, static_cast<int>(trainer_trajs.size()));
    trainer_trajs.push_back(ep);
  });
  trainer.Train(workload, kEpisodes);

  // Hand-rolled serial reference replicating the pre-parallelism trainer:
  // mutating SampleAction from the agent's rng, update every
  // episodes_per_update episodes, trailing flush.
  PolicyGradientAgent reference(env_.state_dim(), env_.action_dim(),
                                config.pg, kSeed);
  std::vector<Episode> reference_trajs;
  std::vector<Episode> pending;
  for (int e = 0; e < kEpisodes; ++e) {
    const Query& query = workload[static_cast<size_t>(e) % workload.size()];
    env_.SetQuery(&query);
    env_.Reset();
    Episode episode;
    while (!env_.Done()) {
      Transition t;
      t.state = env_.StateVector();
      t.mask = env_.ActionMask();
      t.action = reference.SampleAction(t.state, t.mask, &t.old_prob);
      StepResult step = env_.Step(t.action);
      t.reward = step.reward;
      episode.steps.push_back(std::move(t));
    }
    reference_trajs.push_back(episode);
    if (!episode.steps.empty()) {
      pending.push_back(std::move(episode));
      if (static_cast<int>(pending.size()) >= config.episodes_per_update) {
        reference.Update(pending);
        pending.clear();
      }
    }
  }
  if (!pending.empty()) reference.Update(pending);

  ASSERT_EQ(trainer_trajs.size(), reference_trajs.size());
  for (size_t i = 0; i < trainer_trajs.size(); ++i) {
    ExpectEpisodesEqual(trainer_trajs[i], reference_trajs[i]);
  }
  ExpectNetsEqual(trainer.agent().policy_net(), reference.policy_net());
  ExpectNetsEqual(trainer.agent().value_net(), reference.value_net());
}

TEST_F(ParallelRolloutTest, NWorkerRunIsDeterministicForFixedSeed) {
  std::vector<Query> workload = MakeWorkload(200, "det");
  constexpr int kEpisodes = 40;
  constexpr int kWorkers = 3;
  constexpr uint64_t kSeed = 55;

  auto run = [&](std::vector<Episode>* trajs) {
    JoinOrderEnv primary(&featurizer_, reward_fn_);
    std::vector<std::unique_ptr<JoinOrderEnv>> extra;
    std::vector<JoinOrderEnv*> extra_ptrs;
    for (int w = 1; w < kWorkers; ++w) {
      extra.push_back(
          std::make_unique<JoinOrderEnv>(&featurizer_, reward_fn_));
      extra_ptrs.push_back(extra.back().get());
    }
    RejoinConfig config;
    config.pg.hidden_dims = {24, 24};
    config.episodes_per_update = 8;
    config.num_rollout_workers = kWorkers;
    auto trainer = std::make_unique<RejoinTrainer>(&primary, config, kSeed);
    trainer->SetWorkerEnvs(extra_ptrs);
    trainer->set_trajectory_sink(
        [trajs](int, const Episode& ep) { trajs->push_back(ep); });
    trainer->Train(workload, kEpisodes);
    Mlp policy(trainer->agent().policy_net());
    return policy;
  };

  std::vector<Episode> trajs1, trajs2;
  Mlp policy1 = run(&trajs1);
  Mlp policy2 = run(&trajs2);
  ASSERT_EQ(trajs1.size(), static_cast<size_t>(kEpisodes));
  ASSERT_EQ(trajs2.size(), static_cast<size_t>(kEpisodes));
  for (size_t i = 0; i < trajs1.size(); ++i) {
    ExpectEpisodesEqual(trajs1[i], trajs2[i]);
  }
  ExpectNetsEqual(policy1, policy2);
}

TEST(ParallelCoreTest, ParallelDemonstrationCollectionMatchesSerial) {
  Engine& engine = testing::SharedEngine();
  WorkloadGenerator gen(&engine.catalog(), 777);
  std::vector<Query> workload;
  for (int i = 0; i < 6; ++i) {
    auto q = gen.GenerateQuery(3 + i % 3, "lfd_par" + std::to_string(i));
    ASSERT_TRUE(q.ok());
    workload.push_back(std::move(*q));
  }

  auto make_learner = [&engine](FullPipelineEnv* env,
                                NegLogLatencyReward* reward, int workers) {
    (void)reward;
    LfdConfig config;
    config.predictor.hidden_dims = {16};
    config.pretrain_steps = 30;
    config.num_rollout_workers = workers;
    return std::make_unique<DemonstrationLearner>(env, &engine, config,
                                                  /*seed=*/21);
  };

  RejoinFeaturizer featurizer(8, &engine.estimator());
  NegLogLatencyReward reward(&engine.latency(), &engine.cost_model());
  FullPipelineEnv env_serial(&featurizer, &engine.expert(), &reward);
  FullPipelineEnv env_parallel(&featurizer, &engine.expert(), &reward);

  auto serial = make_learner(&env_serial, &reward, 1);
  auto parallel = make_learner(&env_parallel, &reward, 3);
  auto collected_serial = serial->CollectDemonstrations(workload);
  auto collected_parallel = parallel->CollectDemonstrations(workload);
  ASSERT_TRUE(collected_serial.ok());
  ASSERT_TRUE(collected_parallel.ok());
  EXPECT_EQ(*collected_serial, *collected_parallel);
  EXPECT_EQ(serial->predictor().buffer_size(),
            parallel->predictor().buffer_size());

  // Identical example order + identical seeds: pre-training consumes the
  // same sample stream, so the resulting predictors agree exactly.
  serial->Pretrain();
  parallel->Pretrain();
  for (const Query& q : workload) {
    EXPECT_EQ(serial->EvaluateQuery(q), parallel->EvaluateQuery(q));
  }
}

TEST(ParallelCoreTest, CompareWorkloadMatchesPerQueryCompare) {
  Engine& engine = testing::SharedEngine();
  WorkloadGenerator gen(&engine.catalog(), 888);
  std::vector<Query> workload;
  for (int i = 0; i < 5; ++i) {
    auto q = gen.GenerateQuery(3 + i % 2, "hf_par" + std::to_string(i));
    ASSERT_TRUE(q.ok());
    workload.push_back(std::move(*q));
  }

  HandsFreeConfig config;
  config.strategy = TrainingStrategy::kCostModelBootstrapping;
  config.max_relations = 6;
  config.training_episodes = 32;
  config.num_rollout_workers = 3;
  config.bootstrap.pg.hidden_dims = {16};
  HandsFreeOptimizer optimizer(&engine, config);
  ASSERT_TRUE(optimizer.Train(workload).ok());

  auto parallel = optimizer.CompareWorkload(workload);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto single = optimizer.Compare(workload[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*parallel)[i].learned_cost, single->learned_cost);
    EXPECT_EQ((*parallel)[i].learned_latency_ms, single->learned_latency_ms);
    EXPECT_EQ((*parallel)[i].expert_cost, single->expert_cost);
    EXPECT_EQ((*parallel)[i].expert_latency_ms, single->expert_latency_ms);
  }

  // OptimizeWorkload plans agree with per-query Optimize.
  auto plans = optimizer.OptimizeWorkload(workload);
  ASSERT_TRUE(plans.ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto single = optimizer.Optimize(workload[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*plans)[i]->ToString(workload[i]),
              (*single)->ToString(workload[i]));
  }
}

TEST(ParallelCoreTest, IncrementalTrainerParallelRunIsDeterministic) {
  Engine& engine = testing::SharedEngine();
  RejoinFeaturizer featurizer(6, &engine.estimator());
  NegLogCostReward reward(&engine.cost_model());

  auto run = [&](std::vector<double>* rewards) {
    FullPipelineEnv env(&featurizer, &engine.expert(), &reward);
    WorkloadGenerator gen(&engine.catalog(), 999);
    PolicyGradientConfig pg;
    pg.hidden_dims = {16};
    IncrementalTrainer trainer(&env, &gen, pg, /*episodes_per_update=*/4,
                               /*seed=*/61, /*num_rollout_workers=*/3);
    std::vector<CurriculumPhase> phases =
        BuildCurriculum(CurriculumKind::kPipeline, 24, 5);
    Status status = trainer.Run(phases, /*queries_per_phase=*/4,
                                [rewards](const CurriculumEpisodeStats& s) {
                                  rewards->push_back(s.reward);
                                });
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(rewards->size(), 24u);
  };

  std::vector<double> rewards1, rewards2;
  run(&rewards1);
  run(&rewards2);
  ASSERT_EQ(rewards1.size(), rewards2.size());
  for (size_t i = 0; i < rewards1.size(); ++i) {
    EXPECT_EQ(rewards1[i], rewards2[i]);
  }
}

}  // namespace
}  // namespace hfq
