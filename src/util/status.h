// Status and Result<T>: exception-free error propagation in the style of
// RocksDB's Status / Abseil's StatusOr. All fallible public APIs in this
// library return one of these two types.
#ifndef HFQ_UTIL_STATUS_H_
#define HFQ_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hfq {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. OK statuses carry no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status. Access to the value of
/// a failed result aborts in debug builds (checked via assert).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

}  // namespace hfq

/// Propagates a non-OK Status to the caller.
#define HFQ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::hfq::Status _hfq_status = (expr);      \
    if (!_hfq_status.ok()) return _hfq_status; \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error status from the enclosing function.
#define HFQ_ASSIGN_OR_RETURN(lhs, expr)            \
  HFQ_ASSIGN_OR_RETURN_IMPL_(                      \
      HFQ_STATUS_CONCAT_(_hfq_result, __LINE__), lhs, expr)
#define HFQ_STATUS_CONCAT_INNER_(a, b) a##b
#define HFQ_STATUS_CONCAT_(a, b) HFQ_STATUS_CONCAT_INNER_(a, b)
#define HFQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // HFQ_UTIL_STATUS_H_
