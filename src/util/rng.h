// Deterministic pseudo-random number generation. Every stochastic component
// in the library takes an explicit seed so experiments are reproducible.
// The generator is xoshiro256++ (public domain, Blackman & Vigna).
#ifndef HFQ_UTIL_RNG_H_
#define HFQ_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hfq {

/// The splitmix64 finalizer: decorrelates seeds derived from one master
/// seed (e.g. per-cell or per-rollout streams), so adjacent derived
/// values never share an Rng stream prefix. This is the same expansion
/// Rng's constructor applies internally.
uint64_t MixSeed64(uint64_t x);

/// A small, fast, seedable PRNG (xoshiro256++) with distribution helpers.
/// Not thread-safe; use one Rng per thread / component.
class Rng {
 public:
  /// Seeds the generator. The seed is expanded with splitmix64, so any
  /// 64-bit value (including 0) yields a well-mixed state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Zipf-distributed integer in [1, n] with exponent `s` (s >= 0; s = 0 is
  /// uniform). Uses rejection-inversion (Hormann & Derflinger), O(1) per
  /// sample, no tables.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum. Never returns an
  /// index whose weight is zero.
  int64_t Categorical(const std::vector<double>& weights);

  /// Deterministic core of Categorical: maps a uniform draw `u` in [0, 1]
  /// to an index by inverse CDF. Exposed (static) so edge cases — e.g. the
  /// rounding fallback when u * total rounds to total — are testable.
  static int64_t CategoricalFromUniform(double u,
                                        const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      std::swap((*v)[static_cast<size_t>(i)], (*v)[static_cast<size_t>(j)]);
    }
  }

  /// Picks a uniformly random element. Vector must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Derives an independent child generator (useful for giving each
  /// subsystem its own stream from one master seed).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace hfq

#endif  // HFQ_UTIL_RNG_H_
