// The tuple-at-a-time reference engine: the historic per-tuple
// interpreter, kept as the executable specification the vectorized
// engine's differential tests (and before/after benchmarks) run against.
// Selected with ExecOptions::engine = ExecEngine::kTupleAtATime.
// Aggregation is not duplicated here — both engines share the vectorized
// collision-safe ExecAggregate in executor.cc.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "exec/executor_internal.h"
#include "util/check.h"

namespace hfq {

using exec_internal::BindColumn;
using exec_internal::BoundColumn;
using exec_internal::BoundIntValue;
using exec_internal::BoundValue;
using exec_internal::CollectIndexCandidates;
using exec_internal::InljProbe;
using exec_internal::ResolveColumn;
using exec_internal::ResolveInljProbe;
using exec_internal::SidedPred;
using exec_internal::SidePreds;

namespace {

struct PairHash {
  size_t operator()(int64_t k) const {
    uint64_t h = static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

}  // namespace

Result<RowIdTable> Executor::ExecScanTuple(const Query& query,
                                           const PlanNode& node) {
  const auto& rel_ref = query.relations[static_cast<size_t>(node.rel_idx)];
  HFQ_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(rel_ref.table));

  std::vector<int64_t> candidates;
  if (node.op == PhysicalOp::kIndexScan) {
    HFQ_RETURN_IF_ERROR(CollectIndexCandidates(*table, query, node,
                                               rel_ref.table, &candidates));
  } else {
    candidates.resize(static_cast<size_t>(table->num_rows()));
    for (int64_t r = 0; r < table->num_rows(); ++r) {
      candidates[static_cast<size_t>(r)] = r;
    }
  }

  // Residual filters, evaluated per candidate tuple.
  RowIdTable out;
  out.rels = {node.rel_idx};
  out.row_ids.resize(1);
  std::vector<const Column*> filter_cols;
  for (int s : node.filter_sel_idxs) {
    const auto& sel = query.selections[static_cast<size_t>(s)];
    filter_cols.push_back(ResolveColumn(*db_, query, sel.column));
  }
  for (int64_t row : candidates) {
    bool pass = true;
    for (size_t i = 0; i < node.filter_sel_idxs.size(); ++i) {
      const auto& sel = query.selections[
          static_cast<size_t>(node.filter_sel_idxs[i])];
      if (!EvalCmp(filter_cols[i]->GetNumeric(row), sel.op,
                   sel.value.AsDouble())) {
        pass = false;
        break;
      }
    }
    if (pass) out.row_ids[0].push_back(row);
  }
  return out;
}

Result<RowIdTable> Executor::ExecJoinTuple(const Query& query,
                                           const PlanNode& node,
                                           ExecResult* result) {
  HFQ_CHECK(node.children.size() == 2);
  HFQ_ASSIGN_OR_RETURN(RowIdTable outer,
                       ExecNode(query, *node.child(0), result));

  RowIdTable out;
  out.rels = outer.rels;
  const std::vector<SidedPred> preds = SidePreds(query, node);

  auto append_tuple = [&](const RowIdTable& inner, int64_t outer_tuple,
                          int64_t inner_tuple) -> Status {
    for (size_t c = 0; c < outer.rels.size(); ++c) {
      out.row_ids[c].push_back(
          outer.row_ids[c][static_cast<size_t>(outer_tuple)]);
    }
    for (size_t c = 0; c < inner.rels.size(); ++c) {
      out.row_ids[outer.rels.size() + c].push_back(
          inner.row_ids[c][static_cast<size_t>(inner_tuple)]);
    }
    if (out.NumTuples() > options_.max_intermediate_tuples) {
      return Status::ResourceExhausted(
          "intermediate result exceeded max_intermediate_tuples");
    }
    return Status::OK();
  };

  if (node.op == PhysicalOp::kIndexNestedLoopJoin) {
    // The inner child must be a scan; we probe its table's index per outer
    // row, then apply the inner's residual filters and remaining preds.
    const PlanNode& inner_scan = *node.child(1);
    HFQ_ASSIGN_OR_RETURN(const InljProbe probe,
                         ResolveInljProbe(*db_, query, node));

    out.row_ids.resize(outer.rels.size() + 1);
    out.rels.push_back(inner_scan.rel_idx);
    RowIdTable inner_stub;
    inner_stub.rels = {inner_scan.rel_idx};
    inner_stub.row_ids.resize(1);

    std::vector<const Column*> inner_filter_cols;
    for (int s : inner_scan.filter_sel_idxs) {
      const auto& sel = query.selections[static_cast<size_t>(s)];
      inner_filter_cols.push_back(ResolveColumn(*db_, query, sel.column));
    }
    // Resolve every per-tuple column once, outside the probe loops.
    const BoundColumn outer_key_bound =
        BindColumn(*db_, query, outer, probe.outer_key);
    const Column* index_sel_col = nullptr;
    if (inner_scan.index_sel_idx >= 0) {
      const auto& sel =
          query.selections[static_cast<size_t>(inner_scan.index_sel_idx)];
      index_sel_col = ResolveColumn(*db_, query, sel.column);
    }
    struct RemainingPred {
      BoundColumn outer;
      const Column* inner_col;
    };
    std::vector<RemainingPred> remaining_preds;
    for (const SidedPred& sp :
         SidePreds(query, node, node.inner_probe_pred_idx)) {
      remaining_preds.push_back({BindColumn(*db_, query, outer, sp.outer_ref),
                                 ResolveColumn(*db_, query, sp.inner_ref)});
    }
    std::vector<int64_t> matches;
    for (int64_t t = 0; t < outer.NumTuples(); ++t) {
      int64_t key = BoundIntValue(outer_key_bound, outer, t);
      matches.clear();
      probe.index->LookupEqual(key, &matches);
      for (int64_t row : matches) {
        // Inner residual filters (including any index_sel on the scan).
        bool pass = true;
        for (size_t i = 0; i < inner_scan.filter_sel_idxs.size(); ++i) {
          const auto& sel = query.selections[
              static_cast<size_t>(inner_scan.filter_sel_idxs[i])];
          if (!EvalCmp(inner_filter_cols[i]->GetNumeric(row), sel.op,
                       sel.value.AsDouble())) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        if (index_sel_col != nullptr) {
          const auto& sel = query.selections[
              static_cast<size_t>(inner_scan.index_sel_idx)];
          if (!EvalCmp(index_sel_col->GetNumeric(row), sel.op,
                       sel.value.AsDouble())) {
            continue;
          }
        }
        // Remaining join predicates.
        inner_stub.row_ids[0].assign(1, row);
        bool preds_pass = true;
        for (const RemainingPred& rp : remaining_preds) {
          double ov = BoundValue(rp.outer, outer, t);
          double iv = rp.inner_col->GetNumeric(row);
          if (ov != iv) {
            preds_pass = false;
            break;
          }
        }
        if (!preds_pass) continue;
        HFQ_RETURN_IF_ERROR(append_tuple(inner_stub, t, 0));
      }
    }
    return out;
  }

  HFQ_ASSIGN_OR_RETURN(RowIdTable inner,
                       ExecNode(query, *node.child(1), result));
  out.rels.insert(out.rels.end(), inner.rels.begin(), inner.rels.end());
  out.row_ids.resize(outer.rels.size() + inner.rels.size());

  // Bind each predicate's columns against both inputs once per operator.
  struct BoundPred {
    BoundColumn outer;
    BoundColumn inner;
  };
  std::vector<BoundPred> bound_preds;
  bound_preds.reserve(preds.size());
  for (const SidedPred& pred : preds) {
    bound_preds.push_back({BindColumn(*db_, query, outer, pred.outer_ref),
                           BindColumn(*db_, query, inner, pred.inner_ref)});
  }

  auto residual_ok = [&](int64_t ot, int64_t it, size_t first_pred) {
    for (size_t p = first_pred; p < bound_preds.size(); ++p) {
      double ov = BoundValue(bound_preds[p].outer, outer, ot);
      double iv = BoundValue(bound_preds[p].inner, inner, it);
      if (ov != iv) return false;
    }
    return true;
  };

  switch (node.op) {
    case PhysicalOp::kNestedLoopJoin: {
      for (int64_t ot = 0; ot < outer.NumTuples(); ++ot) {
        for (int64_t it = 0; it < inner.NumTuples(); ++it) {
          if (residual_ok(ot, it, 0)) {
            HFQ_RETURN_IF_ERROR(append_tuple(inner, ot, it));
          }
        }
      }
      break;
    }
    case PhysicalOp::kHashJoin: {
      if (preds.empty()) {
        // Degenerate: cross product via NLJ semantics.
        for (int64_t ot = 0; ot < outer.NumTuples(); ++ot) {
          for (int64_t it = 0; it < inner.NumTuples(); ++it) {
            HFQ_RETURN_IF_ERROR(append_tuple(inner, ot, it));
          }
        }
        break;
      }
      std::unordered_map<int64_t, std::vector<int64_t>, PairHash> ht;
      ht.reserve(static_cast<size_t>(inner.NumTuples()));
      for (int64_t it = 0; it < inner.NumTuples(); ++it) {
        ht[BoundIntValue(bound_preds[0].inner, inner, it)].push_back(it);
      }
      for (int64_t ot = 0; ot < outer.NumTuples(); ++ot) {
        auto hit = ht.find(BoundIntValue(bound_preds[0].outer, outer, ot));
        if (hit == ht.end()) continue;
        for (int64_t it : hit->second) {
          if (residual_ok(ot, it, 1)) {
            HFQ_RETURN_IF_ERROR(append_tuple(inner, ot, it));
          }
        }
      }
      break;
    }
    case PhysicalOp::kMergeJoin: {
      if (preds.empty()) {
        return Status::InvalidArgument("merge join requires a join key");
      }
      // Sort tuple indices of both sides by the first key; merge with
      // block handling for duplicate keys; residual preds filter.
      std::vector<int64_t> oidx(static_cast<size_t>(outer.NumTuples()));
      std::vector<int64_t> iidx(static_cast<size_t>(inner.NumTuples()));
      for (size_t i = 0; i < oidx.size(); ++i) {
        oidx[i] = static_cast<int64_t>(i);
      }
      for (size_t i = 0; i < iidx.size(); ++i) {
        iidx[i] = static_cast<int64_t>(i);
      }
      auto okey = [&](int64_t t) {
        return BoundIntValue(bound_preds[0].outer, outer, t);
      };
      auto ikey = [&](int64_t t) {
        return BoundIntValue(bound_preds[0].inner, inner, t);
      };
      std::sort(oidx.begin(), oidx.end(),
                [&](int64_t a, int64_t b) { return okey(a) < okey(b); });
      std::sort(iidx.begin(), iidx.end(),
                [&](int64_t a, int64_t b) { return ikey(a) < ikey(b); });
      size_t oi = 0, ii = 0;
      while (oi < oidx.size() && ii < iidx.size()) {
        int64_t ok = okey(oidx[oi]);
        int64_t ik = ikey(iidx[ii]);
        if (ok < ik) {
          ++oi;
        } else if (ok > ik) {
          ++ii;
        } else {
          size_t o_end = oi;
          while (o_end < oidx.size() && okey(oidx[o_end]) == ok) ++o_end;
          size_t i_end = ii;
          while (i_end < iidx.size() && ikey(iidx[i_end]) == ik) ++i_end;
          for (size_t a = oi; a < o_end; ++a) {
            for (size_t b = ii; b < i_end; ++b) {
              if (residual_ok(oidx[a], iidx[b], 1)) {
                HFQ_RETURN_IF_ERROR(append_tuple(inner, oidx[a], iidx[b]));
              }
            }
          }
          oi = o_end;
          ii = i_end;
        }
      }
      break;
    }
    default:
      return Status::Internal("unexpected join op in executor");
  }
  return out;
}

}  // namespace hfq
