#include "search/plan_search.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/check.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hfq {

const char* SearchModeName(SearchMode mode) {
  switch (mode) {
    case SearchMode::kGreedy:
      return "greedy";
    case SearchMode::kBestOfK:
      return "best-of-k";
    case SearchMode::kBeam:
      return "beam";
    case SearchMode::kBestFirst:
      return "best-first";
  }
  return "?";
}

std::string SearchConfigName(const SearchConfig& config) {
  switch (config.mode) {
    case SearchMode::kGreedy:
      return "greedy";
    case SearchMode::kBestOfK:
      return StrFormat("best-of-%d", config.best_of_k);
    case SearchMode::kBeam:
      return StrFormat("beam-%d", config.beam_width);
    case SearchMode::kBestFirst:
      return StrFormat("best-first-%d", config.beam_width);
  }
  return "?";
}

Result<SearchConfig> ParseSearchSpec(const std::string& spec) {
  SearchConfig config;
  if (spec == "greedy") {
    config.mode = SearchMode::kGreedy;
    return config;
  }
  // Parses the numeric suffix of "best-of-<K>" / "beam-<W>". An empty
  // suffix (trailing dash) is rejected; values outside [1, 1e6] are
  // rejected before the narrowing cast so overflow cannot wrap a huge
  // request into a tiny (or negative) knob.
  auto parse_suffix = [](const std::string& s, size_t prefix_len,
                         int* out) {
    if (s.size() <= prefix_len) return false;
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(s.c_str() + prefix_len, &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE || v < 1 ||
        v > 1000000) {
      return false;
    }
    *out = static_cast<int>(v);
    return true;
  };
  // "best-first" must be checked before "best-of-": the prefixes are
  // distinct, but keeping the more specific spelling first makes that
  // independence obvious.
  if (spec == "best-first" || spec.rfind("best-first-", 0) == 0) {
    config.mode = SearchMode::kBestFirst;
    if (spec == "best-first") return config;
    if (!parse_suffix(spec, 11, &config.beam_width)) {
      return Status::InvalidArgument("bad best-first spec: " + spec);
    }
    return config;
  }
  if (spec.rfind("best-of-", 0) == 0 || spec == "best-of-k") {
    config.mode = SearchMode::kBestOfK;
    if (spec == "best-of-k") return config;
    if (!parse_suffix(spec, 8, &config.best_of_k)) {
      return Status::InvalidArgument("bad best-of-K spec: " + spec);
    }
    return config;
  }
  if (spec == "beam" || spec.rfind("beam-", 0) == 0) {
    config.mode = SearchMode::kBeam;
    if (spec == "beam") return config;
    if (!parse_suffix(spec, 5, &config.beam_width)) {
      return Status::InvalidArgument("bad beam spec: " + spec);
    }
    return config;
  }
  return Status::InvalidArgument("unknown search spec: " + spec);
}

bool IsDefaultGreedy(const SearchConfig& config) {
  return config.mode == SearchMode::kGreedy && config.time_budget_ms <= 0.0;
}

std::unique_ptr<PlanSearch> MakePlanSearch(const SearchConfig& config) {
  switch (config.mode) {
    case SearchMode::kGreedy:
      return std::make_unique<GreedySearch>(config);
    case SearchMode::kBestOfK:
      return std::make_unique<BestOfKSearch>(config);
    case SearchMode::kBeam:
      return std::make_unique<BeamSearch>(config);
    case SearchMode::kBestFirst:
      return std::make_unique<BestFirstSearch>(config);
  }
  HFQ_CHECK_MSG(false, "unknown search mode");
  return nullptr;
}

namespace search_internal {

std::vector<int> GreedyRollout(SearchEnv* env, const SearchContext& ctx,
                               double* select_ms_out) {
  env->Reset();
  std::vector<int> actions;
  while (!env->Done()) {
    Stopwatch watch;
    std::vector<double> state = env->StateVector();
    std::vector<bool> mask = env->ActionMask();
    int action = ctx.policy->Greedy(state, mask, ctx.ws);
    if (select_ms_out != nullptr) *select_ms_out += watch.ElapsedMillis();
    env->Step(action);
    actions.push_back(action);
  }
  return actions;
}

std::vector<int> SampledRollout(SearchEnv* env, const FrozenPolicy& policy,
                                Rng* rng, MlpWorkspace* ws) {
  env->Reset();
  std::vector<int> actions;
  while (!env->Done()) {
    std::vector<double> state = env->StateVector();
    std::vector<bool> mask = env->ActionMask();
    int action = policy.Sample(state, mask, rng, ws);
    env->Step(action);
    actions.push_back(action);
  }
  return actions;
}

std::vector<int> TopActions(const std::vector<double>& probs,
                            const std::vector<bool>& mask, int width) {
  std::vector<int> valid;
  for (size_t a = 0; a < probs.size(); ++a) {
    if (mask[a]) valid.push_back(static_cast<int>(a));
  }
  std::stable_sort(valid.begin(), valid.end(), [&probs](int a, int b) {
    return probs[static_cast<size_t>(a)] > probs[static_cast<size_t>(b)];
  });
  if (static_cast<int>(valid.size()) > width) {
    valid.resize(static_cast<size_t>(width));
  }
  return valid;
}

int SampleFromProbs(const std::vector<double>& probs,
                    const std::vector<bool>& mask, Rng* rng) {
  HFQ_CHECK(rng != nullptr);
  int action = static_cast<int>(rng->Categorical(probs));
  HFQ_CHECK(mask[static_cast<size_t>(action)]);
  return action;
}

const ActionPrefix* ExtendPrefix(Arena* arena, const ActionPrefix* prefix,
                                 int action) {
  ActionPrefix* node = arena->New<ActionPrefix>();
  node->parent = prefix;
  node->action = action;
  node->length = (prefix != nullptr ? prefix->length : 0) + 1;
  return node;
}

std::vector<int> MaterializePrefix(const ActionPrefix* prefix) {
  std::vector<int> actions(
      static_cast<size_t>(prefix != nullptr ? prefix->length : 0));
  size_t i = actions.size();
  for (const ActionPrefix* node = prefix; node != nullptr;
       node = node->parent) {
    actions[--i] = node->action;
  }
  HFQ_CHECK(i == 0);
  return actions;
}

void ReplayActions(SearchEnv* env, const std::vector<int>& actions) {
  env->Reset();
  for (int action : actions) {
    HFQ_CHECK_MSG(!env->Done(), "replay overran the episode");
    env->Step(action);
  }
  HFQ_CHECK_MSG(env->Done(), "replay ended before the episode did");
}

void FinishSearch(SearchEnv* env, const Stopwatch& total,
                  SearchResult* result) {
  ReplayActions(env, result->actions);
  HFQ_CHECK(env->FinalCost() == result->cost);
  // Charged last, after the replay (and after any fallback work that led
  // here), so planning_ms is the full wall clock of the call.
  result->planning_ms = total.ElapsedMillis();
}

}  // namespace search_internal

GreedySearch::GreedySearch(SearchConfig config) : config_(config) {}

Result<SearchResult> GreedySearch::Search(SearchEnv* env,
                                          const SearchContext& ctx,
                                          ThreadPool* pool) {
  (void)pool;  // A single rollout has nothing to fan out.
  HFQ_CHECK(env != nullptr && ctx.policy != nullptr && ctx.ws != nullptr);
  SearchResult result;
  result.actions =
      search_internal::GreedyRollout(env, ctx, &result.planning_ms);
  result.cost = env->FinalCost();
  result.rollouts = 1;
  return result;
}

}  // namespace hfq
