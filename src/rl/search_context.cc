#include "rl/search_context.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hfq {

AgentPolicy::AgentPolicy(const PolicyGradientAgent* agent) : agent_(agent) {
  HFQ_CHECK(agent != nullptr);
}

int AgentPolicy::Greedy(const std::vector<double>& state,
                        const std::vector<bool>& mask,
                        MlpWorkspace* ws) const {
  return agent_->GreedyAction(state, mask, ws);
}

int AgentPolicy::Sample(const std::vector<double>& state,
                        const std::vector<bool>& mask, Rng* rng,
                        MlpWorkspace* ws) const {
  return agent_->SampleAction(state, mask, rng, ws);
}

std::vector<double> AgentPolicy::Probabilities(
    const std::vector<double>& state, const std::vector<bool>& mask,
    MlpWorkspace* ws) const {
  return agent_->ActionProbabilities(state, mask, ws);
}

double AgentPolicy::Value(const std::vector<double>& state,
                          const std::vector<bool>& mask,
                          MlpWorkspace* ws) const {
  (void)mask;
  return agent_->Value(state, ws);
}

PredictorPolicy::PredictorPolicy(const RewardPredictor* predictor)
    : predictor_(predictor) {
  HFQ_CHECK(predictor != nullptr);
}

int PredictorPolicy::Greedy(const std::vector<double>& state,
                            const std::vector<bool>& mask,
                            MlpWorkspace* ws) const {
  return predictor_->SelectAction(state, mask, /*epsilon=*/0.0,
                                  /*rng=*/nullptr, ws);
}

std::vector<double> PredictorPolicy::Probabilities(
    const std::vector<double>& state, const std::vector<bool>& mask,
    MlpWorkspace* ws) const {
  // Softmax over negated predictions, max-shifted for stability. The
  // predictor's outcomes are lower-is-better, so the best action gets the
  // largest probability and argmax (lowest-index ties) matches Greedy.
  std::vector<double> preds = predictor_->PredictAll(state, ws);
  HFQ_CHECK(preds.size() == mask.size());
  double best = 0.0;
  bool any = false;
  for (size_t a = 0; a < preds.size(); ++a) {
    if (!mask[a]) continue;
    if (!any || -preds[a] > best) best = -preds[a];
    any = true;
  }
  HFQ_CHECK_MSG(any, "no valid action");
  std::vector<double> probs(preds.size(), 0.0);
  double total = 0.0;
  for (size_t a = 0; a < preds.size(); ++a) {
    if (!mask[a]) continue;
    probs[a] = std::exp(-preds[a] - best);
    total += probs[a];
  }
  for (double& p : probs) p /= total;
  return probs;
}

int PredictorPolicy::Sample(const std::vector<double>& state,
                            const std::vector<bool>& mask, Rng* rng,
                            MlpWorkspace* ws) const {
  HFQ_CHECK(rng != nullptr);
  std::vector<double> probs = Probabilities(state, mask, ws);
  int action = static_cast<int>(rng->Categorical(probs));
  HFQ_CHECK(mask[static_cast<size_t>(action)]);
  return action;
}

double PredictorPolicy::Value(const std::vector<double>& state,
                              const std::vector<bool>& mask,
                              MlpWorkspace* ws) const {
  std::vector<double> preds = predictor_->PredictAll(state, ws);
  HFQ_CHECK(preds.size() == mask.size());
  double best = 0.0;
  bool any = false;
  for (size_t a = 0; a < preds.size(); ++a) {
    if (!mask[a]) continue;
    if (!any || -preds[a] > best) best = -preds[a];
    any = true;
  }
  // Terminal states expose an empty mask; the best achievable outcome of
  // "no decision left" is neutral.
  return any ? best : 0.0;
}

}  // namespace hfq
