#include "storage/data_generator.h"

#include <cmath>

#include "util/check.h"

namespace hfq {
namespace {

// Deterministic value-to-value map used for correlated columns: two rows
// with equal source values always map to the same derived value.
int64_t DeriveCorrelated(int64_t source_value, int64_t num_distinct) {
  uint64_t h = static_cast<uint64_t>(source_value) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<int64_t>(h % static_cast<uint64_t>(num_distinct));
}

}  // namespace

Result<std::unique_ptr<Database>> DataGenerator::Generate(
    const Catalog& catalog) {
  if (options_.skew_scale < 0.0) {
    return Status::InvalidArgument("skew_scale must be non-negative");
  }
  auto db = std::make_unique<Database>(&catalog);
  Rng master(seed_);
  for (const auto& table_def : catalog.tables()) {
    // Per-table stream so adding a table never perturbs the others.
    Rng rng = master.Fork();
    auto table = std::make_unique<Table>(table_def);
    const int64_t n = table_def.num_rows;
    for (size_t ci = 0; ci < table_def.columns.size(); ++ci) {
      const ColumnDef& col_def = table_def.columns[ci];
      Column& col = table->column(static_cast<int32_t>(ci));
      col.Reserve(n);
      switch (col_def.distribution) {
        case ValueDistribution::kSerial: {
          if (col_def.type != ColumnType::kInt64) {
            return Status::InvalidArgument("serial columns must be int64");
          }
          for (int64_t row = 0; row < n; ++row) col.AppendInt(row);
          break;
        }
        case ValueDistribution::kForeignKey: {
          HFQ_ASSIGN_OR_RETURN(const TableDef* parent,
                               catalog.GetTable(col_def.ref_table));
          const int64_t parent_rows = parent->num_rows;
          if (parent_rows <= 0) {
            return Status::InvalidArgument("FK into empty table " +
                                           col_def.ref_table);
          }
          const double fk_skew = col_def.skew * options_.skew_scale;
          for (int64_t row = 0; row < n; ++row) {
            // Zipf rank 1 = most-referenced parent (parent id 0).
            int64_t parent_id = fk_skew > 0.0
                                    ? rng.Zipf(parent_rows, fk_skew) - 1
                                    : rng.UniformInt(0, parent_rows - 1);
            col.AppendInt(parent_id);
          }
          break;
        }
        case ValueDistribution::kUniform:
        case ValueDistribution::kZipf: {
          const int64_t distinct = std::max<int64_t>(1, col_def.num_distinct);
          const bool correlated =
              col_def.correlated_with >= 0 &&
              col_def.correlated_with < static_cast<int32_t>(ci) &&
              col_def.correlation_strength > 0.0;
          const Column* source =
              correlated ? &table->column(col_def.correlated_with) : nullptr;
          if (correlated &&
              source->type() != ColumnType::kInt64) {
            return Status::InvalidArgument(
                "correlated source column must be int64");
          }
          const double attr_skew = col_def.skew * options_.skew_scale;
          for (int64_t row = 0; row < n; ++row) {
            int64_t v;
            if (correlated && rng.Bernoulli(col_def.correlation_strength)) {
              v = DeriveCorrelated(source->GetInt(row), distinct);
            } else if (col_def.distribution == ValueDistribution::kZipf &&
                       attr_skew > 0.0) {
              v = rng.Zipf(distinct, attr_skew) - 1;
            } else {
              v = rng.UniformInt(0, distinct - 1);
            }
            if (col_def.type == ColumnType::kInt64) {
              col.AppendInt(v);
            } else {
              // Doubles get a deterministic fractional jitter so values are
              // non-integral but reproducible.
              col.AppendDouble(static_cast<double>(v) + 0.5);
            }
          }
          break;
        }
      }
    }
    HFQ_RETURN_IF_ERROR(table->Seal());
    HFQ_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }
  HFQ_RETURN_IF_ERROR(db->BuildAllIndexes());
  return db;
}

}  // namespace hfq
