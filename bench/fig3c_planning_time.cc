// FIG3C — Figure 3c, "Optimization time": planning time (ms) vs number of
// relations, expert optimizer vs trained ReJOIN inference. The paper's
// counter-intuitive result: after training, ReJOIN's O(n) bottom-up
// network inference is often *faster* than the traditional enumerator,
// with the gap widening as relations grow.
#include <map>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

using namespace hfq;         // NOLINT
using namespace hfq::bench;  // NOLINT

int main() {
  PrintHeader(
      "FIG3C  planning time vs relation count (expert enumerator vs "
      "trained ReJOIN)",
      "ReJOIN's planning time grows ~linearly and undercuts PostgreSQL's "
      "enumerator as queries grow");

  auto engine = MakeEngine();

  // Per-size probe workloads (3 queries per relation count, 4..17).
  WorkloadGenerator generator(&engine->catalog(), 5150, QueryShapeOptions(),
                          &engine->db());
  std::map<int, std::vector<Query>> by_size;
  for (int n = 4; n <= 17; ++n) {
    auto queries = generator.GenerateFixedSizeWorkload(
        3, n, "t" + std::to_string(n) + "_");
    HFQ_CHECK(queries.ok());
    by_size[n] = std::move(*queries);
  }

  // Briefly train a ReJOIN agent over mixed sizes (inference cost does not
  // depend on policy quality, but a warm policy keeps the comparison
  // honest: this is the planner a user would actually run).
  std::vector<Query> train;
  for (auto& [n, queries] : by_size) {
    for (const Query& q : queries) train.push_back(q);
  }
  RejoinConfig config;
  config.pg.hidden_dims = {128, 128};
  RejoinHarness harness = MakeRejoinHarness(engine.get(), 17, config);
  std::printf("training ReJOIN (1500 episodes)...\n");
  harness.trainer->Train(train, 1500);

  std::printf("%-6s %16s %16s  %s\n", "rels", "expert (ms)", "rejoin (ms)",
              "expert enumerator");
  PrintRule(78);
  const int kReps = 3;
  for (auto& [n, queries] : by_size) {
    double expert_ms = 0.0, rejoin_ms = 0.0;
    for (const Query& q : queries) {
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch watch;
        auto plan = engine->expert().Optimize(q);
        HFQ_CHECK(plan.ok());
        expert_ms += watch.ElapsedMillis();
        double ms = 0.0;
        auto tree = harness.trainer->Plan(q, &ms);
        rejoin_ms += ms;
      }
    }
    const double denom = static_cast<double>(queries.size() * kReps);
    const char* mode =
        n <= engine->expert().options().geqo_threshold ? "(exhaustive DP)"
                                                       : "(genetic/GEQO)";
    std::printf("%-6d %16.3f %16.3f  %s\n", n, expert_ms / denom,
                rejoin_ms / denom, mode);
    std::fflush(stdout);
  }
  PrintRule(78);
  std::printf(
      "shape check: expert time should grow super-linearly toward the DP "
      "limit\n(then stay high under GEQO); ReJOIN inference grows ~linearly "
      "in n.\n");

  // Plan-time search extension: the same trained policy driven through the
  // pluggable search layer. Planning time charges the FULL search (every
  // rollout/expansion), so this is the honest cost/latency trade-off of
  // searched inference vs the single greedy rollout. Plan cost is the
  // expert-physicalized tree cost relative to greedy (< 1 = search found a
  // cheaper join order).
  std::printf("\nplan-time search trade-off (same policy, searched "
              "inference):\n");
  std::printf("%-6s %14s %14s %14s %14s\n", "rels", "greedy (ms)",
              "best-of-8 (ms)", "beam-4 (ms)", "cost vs greedy");
  PrintRule(78);
  SearchConfig best_of_8;
  best_of_8.mode = SearchMode::kBestOfK;
  best_of_8.best_of_k = 8;
  SearchConfig beam_4;
  beam_4.mode = SearchMode::kBeam;
  beam_4.beam_width = 4;
  for (int n : {4, 8, 12, 17}) {
    double greedy_ms = 0.0, best_ms = 0.0, beam_ms = 0.0;
    double greedy_cost = 0.0, best_cost = 0.0, beam_cost = 0.0;
    for (const Query& q : by_size[n]) {
      double ms = 0.0;
      auto greedy_tree = harness.trainer->Plan(q, &ms);
      greedy_ms += ms;
      greedy_cost += harness.TreeCost(engine.get(), q, *greedy_tree);
      auto best_tree = harness.trainer->PlanWithSearch(q, best_of_8, &ms);
      best_ms += ms;
      best_cost += harness.TreeCost(engine.get(), q, *best_tree);
      auto beam_tree = harness.trainer->PlanWithSearch(q, beam_4, &ms);
      beam_ms += ms;
      beam_cost += harness.TreeCost(engine.get(), q, *beam_tree);
    }
    const double denom = static_cast<double>(by_size[n].size());
    std::printf("%-6d %14.3f %14.3f %14.3f   b8:%.3f w4:%.3f\n", n,
                greedy_ms / denom, best_ms / denom, beam_ms / denom,
                best_cost / greedy_cost, beam_cost / greedy_cost);
    std::fflush(stdout);
  }
  PrintRule(78);
  std::printf(
      "search multiplies planning time by ~K (resp. ~W x actions) but can "
      "only\nlower plan cost: the greedy rollout is always a candidate.\n");
  return 0;
}
