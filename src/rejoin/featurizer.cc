#include "rejoin/featurizer.h"

#include <cmath>

#include "util/check.h"

namespace hfq {

RejoinFeaturizer::RejoinFeaturizer(int max_relations,
                                   CardinalityEstimator* estimator)
    : max_relations_(max_relations), estimator_(estimator) {
  HFQ_CHECK(max_relations >= 2 && max_relations <= kMaxRelations);
  HFQ_CHECK(estimator != nullptr);
}

int RejoinFeaturizer::FeatureDim() const {
  const int n = max_relations_;
  return 2 * n * n + 3 * n;
}

std::vector<double> RejoinFeaturizer::Featurize(
    const Query& query, const std::vector<const JoinTreeNode*>& subtrees) {
  const int n = max_relations_;
  HFQ_CHECK(query.num_relations() <= n);
  std::vector<double> features(static_cast<size_t>(FeatureDim()), 0.0);

  // Block 1: tree structure (slot-major), depth-weighted membership.
  for (size_t slot = 0; slot < subtrees.size(); ++slot) {
    HFQ_CHECK(static_cast<int>(slot) < n);
    const JoinTreeNode* tree = subtrees[slot];
    for (int rel : RelSetMembers(tree->rels)) {
      int depth = tree->DepthOf(rel);
      features[slot * static_cast<size_t>(n) + static_cast<size_t>(rel)] =
          1.0 / (1.0 + static_cast<double>(depth));
    }
  }
  size_t offset = static_cast<size_t>(n) * static_cast<size_t>(n);

  // Block 2: join-graph adjacency (symmetric; both triangles filled).
  for (const auto& join : query.joins) {
    int a = join.left.rel_idx;
    int b = join.right.rel_idx;
    features[offset + static_cast<size_t>(a * n + b)] = 1.0;
    features[offset + static_cast<size_t>(b * n + a)] = 1.0;
  }
  offset += static_cast<size_t>(n) * static_cast<size_t>(n);

  // Block 3: per-relation estimated selection selectivity.
  for (int rel = 0; rel < query.num_relations(); ++rel) {
    double sel = 1.0;
    for (int s : query.SelectionsOn(rel)) {
      sel *= estimator_->SelectionSelectivity(query, s);
    }
    features[offset + static_cast<size_t>(rel)] = sel;
  }
  offset += static_cast<size_t>(n);

  // Block 4: per-relation log10 base cardinality, scaled to ~[0, 1].
  for (int rel = 0; rel < query.num_relations(); ++rel) {
    double rows = std::max(1.0, estimator_->BaseRows(query, rel));
    features[offset + static_cast<size_t>(rel)] = std::log10(rows) / 8.0;
  }
  offset += static_cast<size_t>(n);

  // Block 5: per-slot estimated subtree output cardinality (log-scaled).
  for (size_t slot = 0; slot < subtrees.size(); ++slot) {
    double rows = std::max(1.0, estimator_->Rows(query, subtrees[slot]->rels));
    features[offset + slot] = std::log10(rows) / 8.0;
  }
  return features;
}

}  // namespace hfq
