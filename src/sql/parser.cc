#include "sql/parser.h"

#include <optional>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace hfq {
namespace {

/// The parser walks the token stream with one token of lookahead.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog& catalog, std::string name)
      : tokens_(std::move(tokens)), catalog_(catalog) {
    query_.name = std::move(name);
  }

  Result<Query> Parse() {
    HFQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    HFQ_RETURN_IF_ERROR(ParseSelectList());
    HFQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    HFQ_RETURN_IF_ERROR(ParseFromList());
    if (AcceptKeyword("WHERE")) {
      HFQ_RETURN_IF_ERROR(ParsePredicates());
    }
    if (AcceptKeyword("GROUP")) {
      HFQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      HFQ_RETURN_IF_ERROR(ParseGroupBy());
    }
    Accept(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return Err("trailing input after query");
    }
    HFQ_RETURN_IF_ERROR(ResolveDeferred());
    HFQ_RETURN_IF_ERROR(query_.Validate(catalog_));
    return std::move(query_);
  }

 private:
  // --- token helpers ---
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdentifier &&
           ToLower(Peek().text) == ToLower(kw);
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Err(std::string("expected ") + kw);
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(StrFormat(
        "%s at offset %zu (near '%s')", msg.c_str(), Peek().offset,
        Peek().text.c_str()));
  }

  static bool IsAggKeyword(const std::string& word, AggFunc* func) {
    std::string w = ToLower(word);
    if (w == "count") *func = AggFunc::kCount;
    else if (w == "sum") *func = AggFunc::kSum;
    else if (w == "min") *func = AggFunc::kMin;
    else if (w == "max") *func = AggFunc::kMax;
    else if (w == "avg") *func = AggFunc::kAvg;
    else return false;
    return true;
  }

  // Column references are collected as raw (qualifier, column) pairs and
  // resolved after the FROM list is known (SQL allows SELECT before FROM).
  struct RawColumn {
    std::string qualifier;  // empty if unqualified
    std::string column;
  };

  Result<RawColumn> ParseRawColumn() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected column reference");
    }
    RawColumn raw;
    raw.column = Advance().text;
    if (Accept(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected column name after '.'");
      }
      raw.qualifier = raw.column;
      raw.column = Advance().text;
    }
    return raw;
  }

  Status ParseSelectList() {
    if (Accept(TokenType::kStar)) return Status::OK();
    for (;;) {
      AggFunc func;
      if (Peek().type == TokenType::kIdentifier &&
          IsAggKeyword(Peek().text, &func) &&
          tokens_[pos_ + 1].type == TokenType::kLParen) {
        Advance();  // function name
        Advance();  // '('
        AggSpec agg;
        agg.func = func;
        if (Accept(TokenType::kStar)) {
          agg.has_arg = false;
        } else {
          HFQ_ASSIGN_OR_RETURN(RawColumn raw, ParseRawColumn());
          agg.has_arg = true;
          deferred_agg_args_.emplace_back(
              static_cast<int>(query_.aggregates.size()), raw);
        }
        if (!Accept(TokenType::kRParen)) return Err("expected ')'");
        query_.aggregates.push_back(agg);
      } else {
        HFQ_ASSIGN_OR_RETURN(RawColumn raw, ParseRawColumn());
        deferred_select_cols_.push_back(raw);
      }
      if (!Accept(TokenType::kComma)) break;
    }
    return Status::OK();
  }

  Status ParseFromList() {
    for (;;) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected table name");
      }
      RelationRef rel;
      rel.table = Advance().text;
      rel.alias = rel.table;
      if (AcceptKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Err("expected alias after AS");
        }
        rel.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier &&
                 !PeekKeyword("WHERE") && !PeekKeyword("GROUP")) {
        rel.alias = Advance().text;
      }
      query_.relations.push_back(std::move(rel));
      if (!Accept(TokenType::kComma)) break;
    }
    return Status::OK();
  }

  Result<ColumnRef> Resolve(const RawColumn& raw) {
    if (!raw.qualifier.empty()) {
      int rel = query_.RelationIndex(raw.qualifier);
      if (rel < 0) {
        return Status::NotFound("unknown alias '" + raw.qualifier + "'");
      }
      return ColumnRef{rel, raw.column};
    }
    // Unqualified: must match exactly one relation's column.
    int found_rel = -1;
    for (int r = 0; r < query_.num_relations(); ++r) {
      auto table = catalog_.GetTable(
          query_.relations[static_cast<size_t>(r)].table);
      if (!table.ok()) continue;
      if ((*table)->ColumnIndex(raw.column) >= 0) {
        if (found_rel >= 0) {
          return Status::InvalidArgument("ambiguous column '" + raw.column +
                                         "'");
        }
        found_rel = r;
      }
    }
    if (found_rel < 0) {
      return Status::NotFound("unknown column '" + raw.column + "'");
    }
    return ColumnRef{found_rel, raw.column};
  }

  Status ParsePredicates() {
    for (;;) {
      HFQ_ASSIGN_OR_RETURN(RawColumn lhs_raw, ParseRawColumn());
      if (Peek().type != TokenType::kOperator) {
        return Err("expected comparison operator");
      }
      std::string op_text = Advance().text;
      CmpOp op;
      if (op_text == "=") op = CmpOp::kEq;
      else if (op_text == "<>" || op_text == "!=") op = CmpOp::kNe;
      else if (op_text == "<") op = CmpOp::kLt;
      else if (op_text == "<=") op = CmpOp::kLe;
      else if (op_text == ">") op = CmpOp::kGt;
      else op = CmpOp::kGe;

      HFQ_ASSIGN_OR_RETURN(ColumnRef lhs, Resolve(lhs_raw));
      if (Peek().type == TokenType::kInteger) {
        SelectionPredicate sel{lhs, op, Value::Int(Advance().int_value)};
        query_.selections.push_back(std::move(sel));
      } else if (Peek().type == TokenType::kDouble) {
        SelectionPredicate sel{lhs, op, Value::Double(Advance().double_value)};
        query_.selections.push_back(std::move(sel));
      } else if (Peek().type == TokenType::kIdentifier) {
        HFQ_ASSIGN_OR_RETURN(RawColumn rhs_raw, ParseRawColumn());
        HFQ_ASSIGN_OR_RETURN(ColumnRef rhs, Resolve(rhs_raw));
        if (op != CmpOp::kEq) {
          return Err("only equality joins are supported");
        }
        if (lhs.rel_idx == rhs.rel_idx) {
          return Err("join predicate must span two relations");
        }
        query_.joins.push_back(JoinPredicate{lhs, rhs});
      } else {
        return Err("expected literal or column after operator");
      }
      if (!AcceptKeyword("AND")) break;
    }
    return Status::OK();
  }

  Status ParseGroupBy() {
    for (;;) {
      HFQ_ASSIGN_OR_RETURN(RawColumn raw, ParseRawColumn());
      HFQ_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(raw));
      query_.group_by.push_back(ref);
      if (!Accept(TokenType::kComma)) break;
    }
    return Status::OK();
  }

  Status ResolveDeferred() {
    for (const auto& raw : deferred_select_cols_) {
      HFQ_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(raw));
      // Non-aggregate select items act as GROUP BY keys if aggregates are
      // present; otherwise they are plain projections (tracked as group_by
      // for execution simplicity only when aggregates exist).
      if (!query_.aggregates.empty()) {
        query_.group_by.push_back(ref);
      }
    }
    for (const auto& [agg_idx, raw] : deferred_agg_args_) {
      HFQ_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(raw));
      query_.aggregates[static_cast<size_t>(agg_idx)].arg = ref;
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  const Catalog& catalog_;
  Query query_;
  size_t pos_ = 0;
  std::vector<RawColumn> deferred_select_cols_;
  std::vector<std::pair<int, RawColumn>> deferred_agg_args_;
};

}  // namespace

Result<Query> ParseSql(const std::string& sql, const Catalog& catalog,
                       const std::string& name) {
  HFQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), catalog, name);
  return parser.Parse();
}

}  // namespace hfq
