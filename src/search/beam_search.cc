#include <algorithm>
#include <cmath>
#include <memory>

#include "search/plan_search.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace hfq {

using search_internal::GreedyRollout;
using search_internal::ReplayActions;
using search_internal::TopActions;

namespace {

// One live (non-terminal) plan prefix, either on the frontier or
// competing for a slot. The state/mask of the prefix's current position
// are computed once, when the prefix is created, and reused for both the
// value-head ranking and the next round's expansion.
struct BeamItem {
  std::unique_ptr<SearchEnv> env;
  std::vector<int> actions;
  double log_prob = 0.0;  // Cumulative log pi(a|s) along the prefix.
  std::vector<double> state;
  std::vector<bool> mask;
  double rank = 0.0;  // log_prob + value_weight * V(state).
};

}  // namespace

BeamSearch::BeamSearch(SearchConfig config) : config_(config) {
  HFQ_CHECK(config_.beam_width >= 1);
}

Result<SearchResult> BeamSearch::Search(SearchEnv* env,
                                        const SearchContext& ctx,
                                        ThreadPool* pool) {
  (void)pool;  // Rounds are sequential; expansion work per round is small.
  HFQ_CHECK(env != nullptr && ctx.policy != nullptr && ctx.ws != nullptr);
  Stopwatch total;
  const int width = config_.beam_width;

  // The greedy rollout: fallback, cost floor, and first completed
  // candidate.
  SearchResult result;
  result.actions = GreedyRollout(env, ctx, nullptr);
  result.cost = env->FinalCost();
  result.rollouts = 1;

  // Root prefix: the episode start. A zero-decision episode (single
  // relation / all-trivial stages) is already Done here and counts as a
  // completed candidate immediately.
  bool any_beam_candidate = false;
  std::vector<BeamItem> frontier;
  {
    BeamItem root;
    root.env = env->CloneSearch();
    root.env->Reset();
    if (root.env->Done()) {
      any_beam_candidate = true;
      ++result.rollouts;
      double cost = root.env->FinalCost();
      if (cost < result.cost) {
        result.cost = cost;
        result.actions.clear();
      }
    } else {
      root.state = root.env->StateVector();
      root.mask = root.env->ActionMask();
      frontier.push_back(std::move(root));
    }
  }

  const double budget = config_.time_budget_ms;
  while (!frontier.empty()) {
    if (budget > 0.0 && total.ElapsedMillis() > budget) break;
    std::vector<BeamItem> children;
    for (BeamItem& item : frontier) {
      std::vector<double> probs =
          ctx.policy->Probabilities(item.state, item.mask, ctx.ws);
      for (int action : TopActions(probs, item.mask, width)) {
        BeamItem child;
        child.env = item.env->CloneSearch();
        child.env->Step(action);
        child.actions = item.actions;
        child.actions.push_back(action);
        child.log_prob =
            item.log_prob +
            std::log(std::max(probs[static_cast<size_t>(action)], 1e-300));
        if (child.env->Done()) {
          // Finished prefix: a candidate plan, scored by its true cost.
          any_beam_candidate = true;
          ++result.rollouts;
          double cost = child.env->FinalCost();
          if (cost < result.cost) {
            result.cost = cost;
            result.actions = std::move(child.actions);
          }
          continue;
        }
        // Featurized once here; reused for the value-head ranking below
        // and for this prefix's expansion next round if it survives.
        child.state = child.env->StateVector();
        child.mask = child.env->ActionMask();
        child.rank = child.log_prob;
        if (config_.value_weight != 0.0) {
          child.rank += config_.value_weight *
                        ctx.policy->Value(child.state, child.mask, ctx.ws);
        }
        children.push_back(std::move(child));
      }
    }
    // Keep the best `width` unfinished prefixes; stable on ties, so equal
    // ranks resolve by (parent order, action probability order) — fully
    // deterministic.
    std::stable_sort(children.begin(), children.end(),
                     [](const BeamItem& a, const BeamItem& b) {
                       return a.rank > b.rank;
                     });
    if (static_cast<int>(children.size()) > width) {
      children.resize(static_cast<size_t>(width));
    }
    frontier = std::move(children);
  }
  result.fell_back_to_greedy = !any_beam_candidate;

  ReplayActions(env, result.actions);
  HFQ_CHECK(env->FinalCost() == result.cost);
  result.planning_ms = total.ElapsedMillis();
  return result;
}

}  // namespace hfq
