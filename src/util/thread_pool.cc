#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace hfq {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  // Second call: the threads were already joined, joinable() is false.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future.
  }
}

namespace {

// Waits on every future (so no task outlives the caller's stack frame),
// then re-throws the first captured exception, if any.
void DrainAll(std::vector<std::future<void>>* futures) {
  std::exception_ptr first_error;
  for (auto& f : *futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  HFQ_CHECK(count >= 0);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  DrainAll(&futures);
}

void RunOnWorkers(ThreadPool* pool, int num_workers,
                  const std::function<void(int)>& fn) {
  HFQ_CHECK(num_workers >= 1);
  if (num_workers == 1 || pool == nullptr) {
    for (int w = 0; w < num_workers; ++w) fn(w);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    futures.push_back(pool->Submit([&fn, w] { fn(w); }));
  }
  DrainAll(&futures);
}

}  // namespace hfq
