// Tests for src/rl: the policy-gradient agent and reward predictor must
// solve small closed-form tasks; replay buffer and schedules behave.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/env.h"
#include "rl/policy_gradient.h"
#include "rl/replay.h"
#include "rl/reward_predictor.h"
#include "rl/schedule.h"

namespace hfq {
namespace {

// A 4-armed bandit: arm 2 pays 1.0, others pay 0.1. One-step episodes.
class BanditEnv : public Environment {
 public:
  void Reset() override { done_ = false; }
  int state_dim() const override { return 2; }
  int action_dim() const override { return 4; }
  std::vector<double> StateVector() const override { return {1.0, 0.0}; }
  std::vector<bool> ActionMask() const override {
    return {true, true, true, true};
  }
  StepResult Step(int action) override {
    done_ = true;
    return {action == 2 ? 1.0 : 0.1, true};
  }
  bool Done() const override { return done_; }

 private:
  bool done_ = true;
};

// Two-step corridor: action 0 = "left", 1 = "right"; reward 1 only for
// (right, left). Tests credit assignment over multiple steps.
class CorridorEnv : public Environment {
 public:
  void Reset() override { step_ = 0; }
  int state_dim() const override { return 3; }
  int action_dim() const override { return 2; }
  std::vector<double> StateVector() const override {
    std::vector<double> s(3, 0.0);
    s[static_cast<size_t>(step_)] = 1.0;
    return s;
  }
  std::vector<bool> ActionMask() const override { return {true, true}; }
  StepResult Step(int action) override {
    history_[static_cast<size_t>(step_)] = action;
    ++step_;
    if (step_ == 2) {
      double reward = (history_[0] == 1 && history_[1] == 0) ? 1.0 : 0.0;
      return {reward, true};
    }
    return {0.0, false};
  }
  bool Done() const override { return step_ >= 2; }

 private:
  int step_ = 2;
  int history_[2] = {0, 0};
};

Episode RunEpisode(Environment* env, PolicyGradientAgent* agent) {
  env->Reset();
  Episode episode;
  while (!env->Done()) {
    Transition t;
    t.state = env->StateVector();
    t.mask = env->ActionMask();
    t.action = agent->SampleAction(t.state, t.mask, &t.old_prob);
    StepResult result = env->Step(t.action);
    t.reward = result.reward;
    episode.steps.push_back(std::move(t));
  }
  return episode;
}

TEST(PolicyGradientTest, SolvesBandit) {
  BanditEnv env;
  PolicyGradientConfig config;
  config.hidden_dims = {16};
  config.policy_lr = 5e-3;
  PolicyGradientAgent agent(env.state_dim(), env.action_dim(), config, 3);
  for (int round = 0; round < 120; ++round) {
    std::vector<Episode> batch;
    for (int e = 0; e < 8; ++e) batch.push_back(RunEpisode(&env, &agent));
    agent.Update(batch);
  }
  env.Reset();
  int greedy = agent.GreedyAction(env.StateVector(), env.ActionMask());
  EXPECT_EQ(greedy, 2);
  auto probs = agent.ActionProbabilities(env.StateVector(), env.ActionMask());
  EXPECT_GT(probs[2], 0.6);
}

TEST(PolicyGradientTest, SolvesCorridor) {
  CorridorEnv env;
  PolicyGradientConfig config;
  config.hidden_dims = {16};
  config.policy_lr = 5e-3;
  PolicyGradientAgent agent(env.state_dim(), env.action_dim(), config, 5);
  for (int round = 0; round < 200; ++round) {
    std::vector<Episode> batch;
    for (int e = 0; e < 8; ++e) batch.push_back(RunEpisode(&env, &agent));
    agent.Update(batch);
  }
  env.Reset();
  int first = agent.GreedyAction(env.StateVector(), env.ActionMask());
  env.Step(first);
  int second = agent.GreedyAction(env.StateVector(), env.ActionMask());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
}

TEST(PolicyGradientTest, MaskZeroesInvalidActions) {
  PolicyGradientConfig config;
  config.hidden_dims = {8};
  PolicyGradientAgent agent(2, 4, config, 7);
  std::vector<double> state = {0.3, -0.5};
  std::vector<bool> mask = {false, true, false, true};
  auto probs = agent.ActionProbabilities(state, mask);
  EXPECT_EQ(probs[0], 0.0);
  EXPECT_EQ(probs[2], 0.0);
  EXPECT_NEAR(probs[1] + probs[3], 1.0, 1e-9);
  for (int i = 0; i < 50; ++i) {
    int a = agent.SampleAction(state, mask);
    EXPECT_TRUE(a == 1 || a == 3);
  }
  int g = agent.GreedyAction(state, mask);
  EXPECT_TRUE(g == 1 || g == 3);
}

TEST(PolicyGradientTest, BehaviourCloningImitates) {
  PolicyGradientConfig config;
  config.hidden_dims = {16};
  config.policy_lr = 1e-2;
  PolicyGradientAgent agent(2, 3, config, 9);
  // Expert: state (1,0) -> action 0; state (0,1) -> action 2.
  std::vector<Transition> batch;
  for (int i = 0; i < 8; ++i) {
    Transition a;
    a.state = {1.0, 0.0};
    a.mask = {true, true, true};
    a.action = 0;
    batch.push_back(a);
    Transition b;
    b.state = {0.0, 1.0};
    b.mask = {true, true, true};
    b.action = 2;
    batch.push_back(b);
  }
  double first_loss = agent.BehaviourCloneStep(batch);
  double last_loss = first_loss;
  for (int step = 0; step < 150; ++step) {
    last_loss = agent.BehaviourCloneStep(batch);
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
  EXPECT_EQ(agent.GreedyAction({1.0, 0.0}, {true, true, true}), 0);
  EXPECT_EQ(agent.GreedyAction({0.0, 1.0}, {true, true, true}), 2);
}

TEST(PolicyGradientTest, ValueBaselineLearnsReturns) {
  BanditEnv env;
  PolicyGradientConfig config;
  config.hidden_dims = {8};
  PolicyGradientAgent agent(env.state_dim(), env.action_dim(), config, 11);
  for (int round = 0; round < 100; ++round) {
    std::vector<Episode> batch;
    for (int e = 0; e < 8; ++e) batch.push_back(RunEpisode(&env, &agent));
    agent.Update(batch);
  }
  // Once the policy concentrates on the good arm, V(s) -> ~1.0.
  double v = agent.Value({1.0, 0.0});
  EXPECT_GT(v, 0.5);
  EXPECT_LT(v, 1.5);
}

TEST(RewardPredictorTest, LearnsActionOutcomes) {
  RewardPredictorConfig config;
  config.hidden_dims = {16};
  config.lr = 3e-3;
  RewardPredictor predictor(2, 3, config, 13);
  // Outcome: action 0 -> 5.0, action 1 -> 1.0, action 2 -> 3.0.
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    int a = static_cast<int>(rng.UniformInt(0, 2));
    double target = a == 0 ? 5.0 : (a == 1 ? 1.0 : 3.0);
    predictor.AddExample(OutcomeExample{{1.0, 0.5}, a, target});
  }
  predictor.TrainSteps(400);
  EXPECT_NEAR(predictor.Predict({1.0, 0.5}, 0), 5.0, 0.5);
  EXPECT_NEAR(predictor.Predict({1.0, 0.5}, 1), 1.0, 0.5);
  EXPECT_NEAR(predictor.Predict({1.0, 0.5}, 2), 3.0, 0.5);
  // Best action = lowest predicted outcome = 1.
  EXPECT_EQ(predictor.SelectAction({1.0, 0.5}, {true, true, true}, 0.0), 1);
  // Mask forces next best.
  EXPECT_EQ(predictor.SelectAction({1.0, 0.5}, {true, false, true}, 0.0), 2);
  EXPECT_LT(predictor.EvaluateError(64), 0.6);
}

TEST(RewardPredictorTest, EpsilonExplores) {
  RewardPredictorConfig config;
  config.hidden_dims = {8};
  RewardPredictor predictor(1, 2, config, 15);
  for (int i = 0; i < 50; ++i) {
    predictor.AddExample(OutcomeExample{{1.0}, 0, 0.0});
    predictor.AddExample(OutcomeExample{{1.0}, 1, 10.0});
  }
  predictor.TrainSteps(200);
  int explored = 0;
  for (int i = 0; i < 200; ++i) {
    if (predictor.SelectAction({1.0}, {true, true}, 1.0) == 1) ++explored;
  }
  EXPECT_GT(explored, 60);  // epsilon=1.0: uniform over both actions.
  EXPECT_EQ(predictor.SelectAction({1.0}, {true, true}, 0.0), 0);
}

TEST(ReplayBufferTest, RingSemantics) {
  ReplayBuffer<int> buffer(3);
  EXPECT_TRUE(buffer.empty());
  buffer.Add(1);
  buffer.Add(2);
  buffer.Add(3);
  EXPECT_EQ(buffer.size(), 3u);
  buffer.Add(4);  // Overwrites oldest.
  EXPECT_EQ(buffer.size(), 3u);
  std::set<int> contents;
  for (size_t i = 0; i < buffer.size(); ++i) contents.insert(buffer.at(i));
  EXPECT_EQ(contents, (std::set<int>{2, 3, 4}));
  Rng rng(1);
  auto sample = buffer.Sample(&rng, 10);
  EXPECT_EQ(sample.size(), 10u);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
}

TEST(ScheduleTest, LinearInterpolatesAndClamps) {
  LinearSchedule s(1.0, 0.0, 10);
  EXPECT_DOUBLE_EQ(s.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Value(5), 0.5);
  EXPECT_DOUBLE_EQ(s.Value(10), 0.0);
  EXPECT_DOUBLE_EQ(s.Value(100), 0.0);
  EXPECT_DOUBLE_EQ(s.Value(-5), 1.0);
}

TEST(ScheduleTest, ExponentialDecaysToFloor) {
  ExponentialSchedule s(1.0, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(s.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Value(1), 0.5);
  EXPECT_DOUBLE_EQ(s.Value(2), 0.25);
  EXPECT_DOUBLE_EQ(s.Value(10), 0.1);
}

}  // namespace
}  // namespace hfq
