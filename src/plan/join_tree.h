// Logical join trees: binary trees whose leaves are query relations. This
// is the object ReJOIN's episodes construct and what the join enumerators
// produce before physical operators are chosen.
#ifndef HFQ_PLAN_JOIN_TREE_H_
#define HFQ_PLAN_JOIN_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/query.h"
#include "plan/relset.h"

namespace hfq {

/// A node in a (possibly bushy) binary join tree.
struct JoinTreeNode {
  /// Leaf: the relation index; internal: -1.
  int rel_idx = -1;
  std::unique_ptr<JoinTreeNode> left;
  std::unique_ptr<JoinTreeNode> right;
  /// Relations covered by this subtree.
  RelSet rels = 0;

  bool IsLeaf() const { return rel_idx >= 0; }

  /// Leaf constructor.
  static std::unique_ptr<JoinTreeNode> Leaf(int rel);

  /// Join constructor; takes ownership of both subtrees.
  static std::unique_ptr<JoinTreeNode> Join(
      std::unique_ptr<JoinTreeNode> l, std::unique_ptr<JoinTreeNode> r);

  /// Deep copy.
  std::unique_ptr<JoinTreeNode> Clone() const;

  /// Depth of relation `rel` below this node (root = 0), or -1 if absent.
  int DepthOf(int rel) const;

  /// Height of the tree (leaf = 0).
  int Height() const;

  /// Number of internal (join) nodes.
  int NumJoins() const;

  /// Parenthesized form using query aliases, e.g. "((a x b) x c)".
  std::string ToString(const Query& query) const;

  /// Internal nodes in bottom-up (post) order; useful for replaying a tree
  /// as a sequence of pairwise join actions.
  void InternalNodesPostOrder(std::vector<const JoinTreeNode*>* out) const;
};

/// Builds a left-deep tree joining relations in the given order.
std::unique_ptr<JoinTreeNode> LeftDeepTree(const std::vector<int>& order);

}  // namespace hfq

#endif  // HFQ_PLAN_JOIN_TREE_H_
