// The reinforcement-learning environment interface (states, masked discrete
// actions, terminal rewards) shared by ReJOIN's join-ordering MDP and the
// full-pipeline MDP.
#ifndef HFQ_RL_ENV_H_
#define HFQ_RL_ENV_H_

#include <vector>

namespace hfq {

/// Result of Environment::Step.
struct StepResult {
  double reward = 0.0;
  bool done = false;
};

/// A fixed-dimensional episodic environment with per-state action masking.
/// Lifecycle: Reset() -> [StateVector/ActionMask -> Step(a)]* until
/// Step returns done.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Begins a new episode (the concrete env decides what "new" means, e.g.
  /// the next query of a workload).
  virtual void Reset() = 0;

  /// Dimensionality of StateVector().
  virtual int state_dim() const = 0;

  /// Size of the (fixed) action space; invalid actions are masked.
  virtual int action_dim() const = 0;

  /// Current state featurization.
  virtual std::vector<double> StateVector() const = 0;

  /// mask[a] == true iff action a is currently selectable. At least one
  /// action must be valid unless the episode is done.
  virtual std::vector<bool> ActionMask() const = 0;

  /// Applies action `a` (must be valid). Returns the reward and whether the
  /// episode ended.
  virtual StepResult Step(int action) = 0;

  /// True once the episode has terminated.
  virtual bool Done() const = 0;
};

}  // namespace hfq

#endif  // HFQ_RL_ENV_H_
