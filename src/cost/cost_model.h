// A PostgreSQL-style cost model. Unitless "cost units" built from page and
// CPU primitives (seq_page_cost, random_page_cost, cpu_tuple_cost, ...),
// computed over whatever CardinalitySource it is given. With the histogram
// estimator it plays the traditional optimizer's cost model (the paper's
// reward signal for ReJOIN); with the truth oracle it gives "cost with
// perfect cardinalities" for ablations.
#ifndef HFQ_COST_COST_MODEL_H_
#define HFQ_COST_COST_MODEL_H_

#include "catalog/catalog.h"
#include "plan/physical_plan.h"
#include "stats/cardinality.h"

namespace hfq {

/// Cost primitives (defaults mirror PostgreSQL's planner constants).
struct CostParams {
  CostParams() {}
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  /// Tuples that fit in work_mem (hash tables / sorts spill beyond this).
  double work_mem_tuples = 100000.0;
  /// Multiplier applied to hash build/probe and sort work when spilling.
  double spill_factor = 4.0;
  /// Bytes per page for page-count computation.
  double page_size_bytes = 8192.0;
};

/// Computes and annotates plan costs.
class CostModel {
 public:
  /// `catalog` and `cards` must outlive the model.
  CostModel(const Catalog* catalog, CardinalitySource* cards,
            CostParams params = CostParams());

  /// Recursively fills est_rows / est_cost on every node and returns the
  /// root's total cost.
  double Annotate(const Query& query, PlanNode* root);

  /// Cost of an already-annotated subtree rooted at a *logical* join of two
  /// annotated children using operator `op` — used by enumerators to price
  /// candidate joins without materializing plan nodes.
  double JoinCost(const Query& query, PhysicalOp op, double outer_rows,
                  double outer_cost, double inner_rows, double inner_cost,
                  double output_rows, bool inner_is_indexable) const;

  /// Annotates just an aggregate root whose single child is already
  /// annotated — what operator selection needs to price hash vs sort
  /// aggregation on top of one finished input without re-annotating (and
  /// re-querying the estimator for) the whole subtree. Annotate delegates
  /// here, so the values are identical to a full annotation.
  double AnnotateAggregateTop(const Query& query, PlanNode* root);

  /// Number of heap pages for a base relation.
  double TablePages(const Query& query, int rel) const;

  const CostParams& params() const { return params_; }
  CardinalitySource* cards() { return cards_; }

 private:
  double ScanCost(const Query& query, const PlanNode& node,
                  double* out_rows) const;

  const Catalog* catalog_;
  CardinalitySource* cards_;
  CostParams params_;
};

}  // namespace hfq

#endif  // HFQ_COST_COST_MODEL_H_
