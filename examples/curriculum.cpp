// curriculum: Section 5.3's incremental learning — builds the Pipeline,
// Relations, and Hybrid curricula (Figure 7), prints their phase plans,
// and trains a small agent through one of them.
//
// Run:  ./examples/curriculum [flat|pipeline|relations|hybrid]
#include <cstdio>
#include <cstring>

#include "core/engine.h"
#include "core/incremental.h"
#include "util/logging.h"

using namespace hfq;  // NOLINT — examples favour brevity.

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  CurriculumKind kind = CurriculumKind::kHybrid;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "flat")) kind = CurriculumKind::kFlat;
    if (!std::strcmp(argv[1], "pipeline")) kind = CurriculumKind::kPipeline;
    if (!std::strcmp(argv[1], "relations")) {
      kind = CurriculumKind::kRelations;
    }
  }

  EngineOptions options;
  options.imdb.scale = 0.1;
  auto engine_result = Engine::CreateImdbLike(options);
  if (!engine_result.ok()) return 1;
  Engine& engine = **engine_result;

  // Show all four curricula side by side.
  for (CurriculumKind k :
       {CurriculumKind::kFlat, CurriculumKind::kPipeline,
        CurriculumKind::kRelations, CurriculumKind::kHybrid}) {
    auto phases = BuildCurriculum(k, /*total_episodes=*/600,
                                  /*max_relations=*/6);
    std::printf("%-10s:", CurriculumKindName(k));
    for (const auto& phase : phases) {
      std::printf(" [%s: stages=%d rels<=%d eps=%d]", phase.label.c_str(),
                  phase.stages.CountEnabled(), phase.max_relations,
                  phase.episodes);
    }
    std::printf("\n");
  }

  // Train through the chosen curriculum.
  std::printf("\ntraining through the '%s' curriculum...\n",
              CurriculumKindName(kind));
  RejoinFeaturizer featurizer(6, &engine.estimator());
  NegLogCostReward reward(&engine.cost_model());
  FullPipelineEnv env(&featurizer, &engine.expert(), &reward);
  WorkloadGenerator generator(&engine.catalog(), 606, QueryShapeOptions(),
                              &engine.db());
  PolicyGradientConfig pg;
  pg.hidden_dims = {64, 64};
  IncrementalTrainer trainer(&env, &generator, pg, 8, 77);

  auto phases = BuildCurriculum(kind, 600, 6);
  int last_phase = -1;
  Status status = trainer.Run(
      phases, /*queries_per_phase=*/12,
      [&](const CurriculumEpisodeStats& stats) {
        if (stats.phase_index != last_phase) {
          last_phase = stats.phase_index;
          std::printf("  phase %d (%s) begins at episode %d\n",
                      stats.phase_index,
                      phases[static_cast<size_t>(stats.phase_index)]
                          .label.c_str(),
                      stats.global_episode);
        }
      });
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Evaluate greedily on fresh queries with the full pipeline enabled.
  env.set_stages(PipelineStages::All());
  double ratio_sum = 0.0;
  const int kEval = 8;
  for (int i = 0; i < kEval; ++i) {
    auto q = generator.GenerateQuery(5, "eval" + std::to_string(i));
    if (!q.ok()) return 1;
    env.SetQuery(&*q);
    env.Reset();
    while (!env.Done()) {
      std::vector<double> s = env.StateVector();
      std::vector<bool> m = env.ActionMask();
      env.Step(trainer.agent().GreedyAction(s, m));
    }
    auto expert = engine.expert().Optimize(*q);
    if (!expert.ok()) return 1;
    ratio_sum += env.FinalPlan()->est_cost / (*expert)->est_cost;
  }
  std::printf("done. holdout mean plan cost = %.0f%% of expert\n",
              100.0 * ratio_sum / kEval);
  return 0;
}
