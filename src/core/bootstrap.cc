#include "core/bootstrap.h"

#include <algorithm>

#include "rl/rollout.h"
#include "util/check.h"

namespace hfq {

const char* BootstrapSwitchModeName(BootstrapSwitchMode mode) {
  switch (mode) {
    case BootstrapSwitchMode::kUnscaled:
      return "unscaled";
    case BootstrapSwitchMode::kScaled:
      return "scaled";
    case BootstrapSwitchMode::kScaledTransfer:
      return "scaled+transfer";
  }
  return "?";
}

BootstrapTrainer::BootstrapTrainer(FullPipelineEnv* env, Engine* engine,
                                   BootstrapConfig config, uint64_t seed)
    : env_(env),
      engine_(engine),
      config_(config),
      agent_(env->state_dim(), env->action_dim(), config.pg, seed),
      seed_(seed),
      cost_reward_(&engine->cost_model()),
      latency_reward_(&engine->latency(), &engine->cost_model()),
      scaled_reward_(&engine->latency(), &engine->cost_model()) {
  HFQ_CHECK(env != nullptr && engine != nullptr);
  HFQ_CHECK(config_.num_rollout_workers >= 1);
  env_->set_reward(&cost_reward_);
}

void BootstrapTrainer::EnsureWorkers() {
  if (config_.num_rollout_workers <= 1) return;
  while (static_cast<int>(worker_envs_.size()) <
         config_.num_rollout_workers - 1) {
    worker_envs_.push_back(std::make_unique<FullPipelineEnv>(
        env_->featurizer(), env_->expert(), env_->reward(), env_->config()));
    worker_rngs_.push_back(std::make_unique<Rng>(
        seed_ + static_cast<uint64_t>(worker_rngs_.size()) + 1));
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(config_.num_rollout_workers);
  }
}

void BootstrapTrainer::RunPhase(
    const std::vector<Query>& workload, int episodes, int phase,
    const std::function<void(const BootstrapEpisodeStats&)>& on_episode) {
  HFQ_CHECK(!workload.empty());
  EnsureWorkers();
  std::vector<FullPipelineEnv*> envs = {env_};
  std::vector<Rng*> rngs = {&agent_.rng()};
  for (auto& worker_env : worker_envs_) {
    // The reward regime changes between phases: resync worker envs with
    // the primary env's current signal (the signals themselves are
    // thread-safe and shared).
    worker_env->set_stages(env_->stages());
    worker_env->set_reward(env_->reward());
  }
  for (size_t w = 0; w < worker_envs_.size(); ++w) {
    envs.push_back(worker_envs_[w].get());
    rngs.push_back(worker_rngs_[w].get());
  }
  ThreadPool* pool = config_.num_rollout_workers > 1 ? pool_.get() : nullptr;

  // Round-based collection: a round ends exactly where the serial loop
  // would apply a policy update, so the policy is frozen within a round
  // and the update cadence matches the serial path episode-for-episode.
  int e = 0;
  while (e < episodes) {
    const int room =
        config_.episodes_per_update - static_cast<int>(pending_.size());
    const int round = std::min(episodes - e, std::max(1, room));
    std::vector<const Query*> queries(static_cast<size_t>(round));
    std::vector<BootstrapEpisodeStats> stats(static_cast<size_t>(round));
    for (int i = 0; i < round; ++i) {
      queries[static_cast<size_t>(i)] =
          &workload[static_cast<size_t>(e + i) % workload.size()];
    }
    std::vector<Episode> collected = CollectRollouts(
        agent_, envs, rngs, queries, pool,
        [&](int i, FullPipelineEnv* env, const Episode& episode) {
          // In-worker: harvest plan-dependent stats before the env moves
          // on (latency simulation shares the thread-safe oracle).
          BootstrapEpisodeStats& s = stats[static_cast<size_t>(i)];
          s.phase = phase;
          s.query_name = queries[static_cast<size_t>(i)]->name;
          s.reward = episode.TotalReward();
          const PlanNode* plan = env->FinalPlan();
          s.cost = plan->est_cost;
          s.latency_ms = engine_->latency().SimulateMs(
              *queries[static_cast<size_t>(i)], *plan);
        });
    for (int i = 0; i < round; ++i) {
      BootstrapEpisodeStats& s = stats[static_cast<size_t>(i)];
      s.episode = episode_counter_++;
      if (phase == 1 && calibrating_ && e + i >= calibration_start_) {
        if (!have_ranges_) {
          cost_min_ = cost_max_ = s.cost;
          lat_min_ = lat_max_ = s.latency_ms;
          have_ranges_ = true;
        } else {
          cost_min_ = std::min(cost_min_, s.cost);
          cost_max_ = std::max(cost_max_, s.cost);
          lat_min_ = std::min(lat_min_, s.latency_ms);
          lat_max_ = std::max(lat_max_, s.latency_ms);
        }
      }
      Episode& episode = collected[static_cast<size_t>(i)];
      if (!episode.steps.empty()) {
        pending_.push_back(std::move(episode));
        if (static_cast<int>(pending_.size()) >=
            config_.episodes_per_update) {
          agent_.Update(pending_);
          pending_.clear();
        }
      }
      if (on_episode) on_episode(s);
    }
    e += round;
  }
  // Flush the trailing partial batch: leftover episodes would otherwise
  // be dropped at the end of Phase 2, or leak Phase-1 cost-reward
  // episodes (with stale old_prob PPO ratios) into the first Phase-2
  // update under a different reward scale.
  if (!pending_.empty()) {
    agent_.Update(pending_);
    pending_.clear();
  }
}

void BootstrapTrainer::RunPhase1(
    const std::vector<Query>& workload, int episodes,
    const std::function<void(const BootstrapEpisodeStats&)>& on_episode) {
  HFQ_CHECK(!workload.empty());
  env_->set_reward(&cost_reward_);
  // At least the final Phase-1 episode always calibrates.
  calibration_start_ = std::min(
      episodes - 1,
      episodes - static_cast<int>(config_.calibration_fraction *
                                  static_cast<double>(episodes)));
  calibrating_ = true;
  RunPhase(workload, episodes, /*phase=*/1, on_episode);
  calibrating_ = false;
}

void BootstrapTrainer::SwitchToPhase2() {
  switch (config_.switch_mode) {
    case BootstrapSwitchMode::kUnscaled:
      env_->set_reward(&latency_reward_);
      break;
    case BootstrapSwitchMode::kScaledTransfer:
      agent_.ResetOptimizerState();
      [[fallthrough]];
    case BootstrapSwitchMode::kScaled:
      HFQ_CHECK_MSG(have_ranges_, "Phase 1 must run before Phase 2");
      scaled_reward_.Calibrate(cost_min_, cost_max_, lat_min_, lat_max_);
      env_->set_reward(&scaled_reward_);
      break;
  }
}

void BootstrapTrainer::RunPhase2(
    const std::vector<Query>& workload, int episodes,
    const std::function<void(const BootstrapEpisodeStats&)>& on_episode) {
  RunPhase(workload, episodes, /*phase=*/2, on_episode);
}

}  // namespace hfq
