#include "optimizer/optimizer.h"

#include <algorithm>

#include "util/check.h"

namespace hfq {

TraditionalOptimizer::TraditionalOptimizer(const Catalog* catalog,
                                           CostModel* cost_model,
                                           OptimizerOptions options)
    : catalog_(catalog), cost_model_(cost_model), options_(options) {
  HFQ_CHECK(catalog != nullptr && cost_model != nullptr);
}

TraditionalOptimizer::AccessPathEntry&
TraditionalOptimizer::GuardedAccessEntryLocked(const Query& query) {
  // Always hash, like the estimator's memo guard: an address fast path
  // would be defeated by stack reuse of same-named variants.
  uint64_t fp = query.StructuralFingerprint();
  auto it = access_cache_.try_emplace(query.name).first;
  AccessPathEntry& entry = it->second;
  if (entry.per_rel.empty()) {
    entry.fingerprint = fp;
    entry.per_rel.resize(static_cast<size_t>(query.num_relations()));
  }
  HFQ_CHECK_MSG(entry.fingerprint == fp,
                ("access-path memo is keyed by query name, but two "
                 "structurally different queries share the name '" +
                 query.name + "'")
                    .c_str());
  return entry;
}

PlanNodePtr TraditionalOptimizer::BestAccessPath(const Query& query,
                                                 int rel) {
  std::lock_guard<std::mutex> lock(access_mu_);
  AccessPathEntry& entry = GuardedAccessEntryLocked(query);
  PlanNodePtr& proto = entry.per_rel[static_cast<size_t>(rel)];
  if (proto == nullptr) proto = ComputeBestAccessPath(query, rel);
  return proto->Clone();
}

void TraditionalOptimizer::ClearAccessPathCache() {
  std::lock_guard<std::mutex> lock(access_mu_);
  access_cache_.clear();
}

PlanNodePtr TraditionalOptimizer::ComputeBestAccessPath(const Query& query,
                                                        int rel) {
  std::vector<int> sels = query.SelectionsOn(rel);
  PlanNodePtr best = MakeSeqScan(rel, sels);
  cost_model_->Annotate(query, best.get());

  if (!options_.enable_indexscan) return best;
  const auto& rel_ref = query.relations[static_cast<size_t>(rel)];
  for (size_t i = 0; i < sels.size(); ++i) {
    const auto& sel = query.selections[static_cast<size_t>(sels[i])];
    // Residual filters: every selection except the indexed one.
    std::vector<int> residual;
    for (size_t j = 0; j < sels.size(); ++j) {
      if (j != i) residual.push_back(sels[j]);
    }
    for (IndexKind kind : {IndexKind::kBTree, IndexKind::kHash}) {
      if (kind == IndexKind::kHash && sel.op != CmpOp::kEq) continue;
      if (sel.op == CmpOp::kNe) continue;  // Indexes cannot serve <>.
      if (catalog_->FindIndex(rel_ref.table, sel.column.column, kind) ==
          nullptr) {
        continue;
      }
      PlanNodePtr candidate = MakeIndexScan(rel, kind, sel.column.column,
                                            sels[i], residual);
      cost_model_->Annotate(query, candidate.get());
      if (candidate->est_cost < best->est_cost) best = std::move(candidate);
    }
  }
  return best;
}

PlanNodePtr TraditionalOptimizer::BestJoin(const Query& query,
                                           PlanNodePtr outer,
                                           PlanNodePtr inner) {
  HFQ_CHECK(outer != nullptr && inner != nullptr);
  std::vector<int> preds =
      query.JoinPredsBetween(outer->rels, inner->rels);
  const double out_rows =
      cost_model_->cards()->Rows(query, outer->rels | inner->rels);

  struct Candidate {
    PhysicalOp op;
    int probe_pred = -1;
    IndexKind inner_index_kind = IndexKind::kBTree;
    double cost = 0.0;
  };
  std::vector<Candidate> candidates;

  auto add = [&](PhysicalOp op, int probe_pred, IndexKind kind) {
    Candidate c{op, probe_pred, kind, 0.0};
    c.cost = cost_model_->JoinCost(
        query, op, outer->est_rows, outer->est_cost, inner->est_rows,
        inner->est_cost, out_rows,
        op == PhysicalOp::kIndexNestedLoopJoin);
    candidates.push_back(c);
  };

  if (options_.enable_nestloop || preds.empty()) {
    // Like PostgreSQL's enable_nestloop, disabling is advisory: a cross
    // product has no other executable operator, so NLJ stays available.
    add(PhysicalOp::kNestedLoopJoin, -1, {});
  }
  if (!preds.empty()) {
    if (options_.enable_hashjoin) add(PhysicalOp::kHashJoin, -1, {});
    if (options_.enable_mergejoin) add(PhysicalOp::kMergeJoin, -1, {});
    if (options_.enable_indexnestloop && inner->IsScan()) {
      const auto& inner_rel =
          query.relations[static_cast<size_t>(inner->rel_idx)];
      for (int pi : preds) {
        const auto& jp = query.joins[static_cast<size_t>(pi)];
        const ColumnRef& inner_key =
            RelSetHas(inner->rels, jp.left.rel_idx) ? jp.left : jp.right;
        for (IndexKind kind : {IndexKind::kHash, IndexKind::kBTree}) {
          if (catalog_->FindIndex(inner_rel.table, inner_key.column, kind) !=
              nullptr) {
            add(PhysicalOp::kIndexNestedLoopJoin, pi, kind);
            break;  // One index suffices per predicate.
          }
        }
      }
    }
  }
  HFQ_CHECK_MSG(!candidates.empty(),
                "all join operators disabled; cannot plan");
  const Candidate* best = &candidates[0];
  for (const auto& c : candidates) {
    if (c.cost < best->cost) best = &c;
  }

  PlanNodePtr inner_child = std::move(inner);
  if (best->op == PhysicalOp::kIndexNestedLoopJoin) {
    // INLJ probes the inner base table directly; turn the inner into a
    // plain filtered scan (never scanned wholesale) and remember the index.
    std::vector<int> all_sels = inner_child->filter_sel_idxs;
    if (inner_child->index_sel_idx >= 0) {
      all_sels.push_back(inner_child->index_sel_idx);
    }
    PlanNodePtr probe_scan = MakeSeqScan(inner_child->rel_idx, all_sels);
    probe_scan->index_kind = best->inner_index_kind;
    cost_model_->Annotate(query, probe_scan.get());
    inner_child = std::move(probe_scan);
  }
  PlanNodePtr join = MakeJoin(best->op, std::move(outer),
                              std::move(inner_child), preds,
                              best->probe_pred);
  // Children are already annotated; fill this node's fields directly.
  join->est_rows = out_rows;
  join->est_cost = best->cost;
  return join;
}

PlanNodePtr TraditionalOptimizer::BestJoinEitherOrientation(
    const Query& query, PlanNodePtr a, PlanNodePtr b) {
  PlanNodePtr a2 = a->Clone();
  PlanNodePtr b2 = b->Clone();
  PlanNodePtr ab = BestJoin(query, std::move(a), std::move(b));
  PlanNodePtr ba = BestJoin(query, std::move(b2), std::move(a2));
  return ab->est_cost <= ba->est_cost ? std::move(ab) : std::move(ba);
}

PlanNodePtr TraditionalOptimizer::AddAggregateIfNeeded(const Query& query,
                                                       PlanNodePtr input) {
  if (query.aggregates.empty() && query.group_by.empty()) return input;
  // Price both operators on top of the one already-annotated input —
  // no input clone, no re-annotation of the finished subtree (the old
  // clone-and-Annotate form re-asked the estimator for every node below,
  // twice). AnnotateAggregateTop computes the same values Annotate would.
  PlanNodePtr agg = MakeAggregate(PhysicalOp::kHashAggregate,
                                  std::move(input));
  const double hash_cost = cost_model_->AnnotateAggregateTop(query,
                                                             agg.get());
  agg->op = PhysicalOp::kSortAggregate;
  const double sort_cost = cost_model_->AnnotateAggregateTop(query,
                                                             agg.get());
  if (hash_cost <= sort_cost) {
    agg->op = PhysicalOp::kHashAggregate;
    cost_model_->AnnotateAggregateTop(query, agg.get());
  }
  return agg;
}

Result<PlanNodePtr> TraditionalOptimizer::PhysicalizeJoinTree(
    const Query& query, const JoinTreeNode& tree) {
  if (tree.IsLeaf()) {
    PlanNodePtr scan = BestAccessPath(query, tree.rel_idx);
    return AddAggregateIfNeeded(query, std::move(scan));
  }
  // All leaf access paths in one guarded memo pass: a single lock +
  // fingerprint check instead of one per relation (plan search
  // physicalizes many candidate trees per query, so this path is hot).
  std::vector<PlanNodePtr> access(
      static_cast<size_t>(query.num_relations()));
  {
    std::lock_guard<std::mutex> lock(access_mu_);
    AccessPathEntry& entry = GuardedAccessEntryLocked(query);
    for (int rel : RelSetMembers(tree.rels)) {
      PlanNodePtr& proto = entry.per_rel[static_cast<size_t>(rel)];
      if (proto == nullptr) proto = ComputeBestAccessPath(query, rel);
      access[static_cast<size_t>(rel)] = proto->Clone();
    }
  }
  // Recursively physicalize children, then pick the join operator with the
  // given orientation (left = outer, right = inner, as the agent chose).
  struct Builder {
    TraditionalOptimizer* opt;
    const Query& query;
    std::vector<PlanNodePtr>& access;
    PlanNodePtr Build(const JoinTreeNode& node) {
      if (node.IsLeaf()) {
        return std::move(access[static_cast<size_t>(node.rel_idx)]);
      }
      PlanNodePtr left = Build(*node.left);
      PlanNodePtr right = Build(*node.right);
      return opt->BestJoin(query, std::move(left), std::move(right));
    }
  };
  Builder builder{this, query, access};
  PlanNodePtr plan = builder.Build(tree);
  return AddAggregateIfNeeded(query, std::move(plan));
}

Result<PlanNodePtr> TraditionalOptimizer::Optimize(const Query& query) {
  if (query.num_relations() == 0) {
    return Status::InvalidArgument("query has no relations");
  }
  if (query.num_relations() == 1) {
    PlanNodePtr scan = BestAccessPath(query, 0);
    return AddAggregateIfNeeded(query, std::move(scan));
  }
  PlanNodePtr joined;
  if (query.num_relations() <= options_.geqo_threshold) {
    Result<PlanNodePtr> dp = EnumerateDp(query);
    if (dp.ok()) {
      joined = std::move(dp).value();
    } else if (dp.status().code() == StatusCode::kResourceExhausted) {
      // The join graph blew the DP subproblem budget (dense graph at a
      // size the threshold admits): degrade gracefully to genetic search
      // rather than failing the query.
      HFQ_ASSIGN_OR_RETURN(joined, EnumerateGeqo(query));
    } else {
      return dp.status();
    }
  } else {
    HFQ_ASSIGN_OR_RETURN(joined, EnumerateGeqo(query));
  }
  return AddAggregateIfNeeded(query, std::move(joined));
}

}  // namespace hfq
