// Tests for src/exec: operator correctness on MicroDb (known answers),
// operator-equivalence properties (every join algorithm returns the same
// multiset), aggregation, resource guards, and the latency simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "exec/executor.h"
#include "exec/latency_model.h"
#include "optimizer/optimizer.h"
#include "stats/truth_oracle.h"
#include "tests/test_common.h"
#include "workload/generator.h"

namespace hfq {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : executor_(micro_.db.get()) {}

  // Builds parent-join-child with the given join operator; child outer.
  PlanNodePtr JoinPlan(PhysicalOp op, std::vector<int> child_sels = {},
                       std::vector<int> parent_sels = {}) {
    PlanNodePtr child_scan = MakeSeqScan(1, std::move(child_sels));
    PlanNodePtr parent_scan = MakeSeqScan(0, std::move(parent_sels));
    int probe = op == PhysicalOp::kIndexNestedLoopJoin ? 0 : -1;
    return MakeJoin(op, std::move(child_scan), std::move(parent_scan), {0},
                    probe);
  }

  testing::MicroDb micro_;
  Executor executor_;
};

TEST_F(ExecTest, SeqScanCounts) {
  Query q = micro_.JoinQuery("exec_scan");
  q.selections.push_back(
      SelectionPredicate{ColumnRef{1, "v"}, CmpOp::kEq, Value::Int(2)});
  auto scan = MakeSeqScan(1, {0});
  auto result = executor_.Execute(q, *scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows, 10);  // v = id % 4 == 2.
}

TEST_F(ExecTest, IndexScanEqualsSeqScan) {
  Query q = micro_.JoinQuery("exec_idx");
  q.selections.push_back(
      SelectionPredicate{ColumnRef{1, "pid"}, CmpOp::kEq, Value::Int(4)});
  auto seq = MakeSeqScan(1, {0});
  auto idx = MakeIndexScan(1, IndexKind::kHash, "pid", 0, {});
  auto r1 = executor_.Execute(q, *seq);
  auto r2 = executor_.Execute(q, *idx);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->output_rows, 4);
  EXPECT_EQ(r2->output_rows, 4);
}

TEST_F(ExecTest, BtreeIndexServesRangePredicates) {
  Query q = micro_.JoinQuery("exec_range");
  q.selections.push_back(
      SelectionPredicate{ColumnRef{1, "v"}, CmpOp::kGe, Value::Int(2)});
  auto idx = MakeIndexScan(1, IndexKind::kBTree, "v", 0, {});
  auto result = executor_.Execute(q, *idx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows, 20);  // v in {2, 3}.
}

TEST_F(ExecTest, HashIndexRejectsRangePredicate) {
  Query q = micro_.JoinQuery("exec_badrange");
  q.selections.push_back(
      SelectionPredicate{ColumnRef{1, "pid"}, CmpOp::kLt, Value::Int(4)});
  auto idx = MakeIndexScan(1, IndexKind::kHash, "pid", 0, {});
  EXPECT_FALSE(executor_.Execute(q, *idx).ok());
}

TEST_F(ExecTest, AllJoinOperatorsAgree) {
  Query q = micro_.JoinQuery("exec_join_ops");
  for (PhysicalOp op :
       {PhysicalOp::kHashJoin, PhysicalOp::kNestedLoopJoin,
        PhysicalOp::kMergeJoin, PhysicalOp::kIndexNestedLoopJoin}) {
    auto plan = JoinPlan(op);
    auto result = executor_.Execute(q, *plan);
    ASSERT_TRUE(result.ok()) << PhysicalOpName(op) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->join_rows, 40) << PhysicalOpName(op);
  }
}

TEST_F(ExecTest, JoinWithSelectionsAgrees) {
  Query q = micro_.JoinQuery("exec_join_sel");
  q.selections.push_back(
      SelectionPredicate{ColumnRef{0, "attr"}, CmpOp::kEq, Value::Int(2)});
  q.selections.push_back(
      SelectionPredicate{ColumnRef{1, "v"}, CmpOp::kLt, Value::Int(2)});
  // parents {2, 7}; children with v in {0, 1} and pid in {2, 7}:
  // pid = id % 10, v = id % 4 -> children ids {2*? } enumerate: ids with
  // id%10 in {2,7} are 2,7,12,17,22,27,32,37; of those v=id%4<2 keeps
  // 12(v0),17(v1),32(v0),37(v1) and 2 rejected? id=2 -> v=2 no;
  // id=7 -> v=3 no; id=22 -> v=2 no; id=27 -> v=3 no. So 4 rows.
  for (PhysicalOp op :
       {PhysicalOp::kHashJoin, PhysicalOp::kNestedLoopJoin,
        PhysicalOp::kMergeJoin, PhysicalOp::kIndexNestedLoopJoin}) {
    auto plan = JoinPlan(op, {1}, {0});
    auto result = executor_.Execute(q, *plan);
    ASSERT_TRUE(result.ok()) << PhysicalOpName(op);
    EXPECT_EQ(result->join_rows, 4) << PhysicalOpName(op);
  }
}

TEST_F(ExecTest, CrossProductViaHashJoinDegenerate) {
  Query q;
  q.name = "exec_cross";
  q.relations = {RelationRef{"parent", "p1"}, RelationRef{"parent", "p2"}};
  auto plan = MakeJoin(PhysicalOp::kHashJoin, MakeSeqScan(0, {}),
                       MakeSeqScan(1, {}), {});
  auto result = executor_.Execute(q, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->join_rows, 100);
}

TEST_F(ExecTest, SelfJoinCorrect) {
  Query q;
  q.name = "exec_self";
  q.relations = {RelationRef{"child", "c1"}, RelationRef{"child", "c2"}};
  q.joins.push_back(JoinPredicate{ColumnRef{0, "pid"}, ColumnRef{1, "pid"}});
  auto plan = MakeJoin(PhysicalOp::kHashJoin, MakeSeqScan(0, {}),
                       MakeSeqScan(1, {}), {0});
  auto result = executor_.Execute(q, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->join_rows, 160);  // 10 pids x 4 x 4.
}

TEST_F(ExecTest, MultiPredicateJoin) {
  // Join on pid AND v-vs-attr: child.pid = parent.id AND child.v =
  // parent.attr.
  Query q;
  q.name = "exec_multi_pred";
  q.relations = {RelationRef{"child", "c"}, RelationRef{"parent", "p"}};
  q.joins.push_back(JoinPredicate{ColumnRef{0, "pid"}, ColumnRef{1, "id"}});
  q.joins.push_back(JoinPredicate{ColumnRef{0, "v"}, ColumnRef{1, "attr"}});
  int64_t expected = 0;  // Brute-force reference.
  for (int64_t c = 0; c < 40; ++c) {
    int64_t pid = c % 10, v = c % 4;
    if (pid < 10 && v == pid % 5) ++expected;
  }
  for (PhysicalOp op : {PhysicalOp::kHashJoin, PhysicalOp::kNestedLoopJoin,
                        PhysicalOp::kMergeJoin}) {
    auto plan = MakeJoin(op, MakeSeqScan(0, {}), MakeSeqScan(1, {}), {0, 1});
    auto result = executor_.Execute(q, *plan);
    ASSERT_TRUE(result.ok()) << PhysicalOpName(op);
    EXPECT_EQ(result->join_rows, expected) << PhysicalOpName(op);
  }
}

TEST_F(ExecTest, AggregationCorrectness) {
  Query q = micro_.JoinQuery("exec_agg");
  q.group_by.push_back(ColumnRef{0, "attr"});
  AggSpec count_star;
  count_star.func = AggFunc::kCount;
  AggSpec sum_v;
  sum_v.func = AggFunc::kSum;
  sum_v.has_arg = true;
  sum_v.arg = ColumnRef{1, "v"};
  AggSpec min_id;
  min_id.func = AggFunc::kMin;
  min_id.has_arg = true;
  min_id.arg = ColumnRef{1, "id"};
  q.aggregates = {count_star, sum_v, min_id};
  auto plan = MakeAggregate(PhysicalOp::kHashAggregate,
                            JoinPlan(PhysicalOp::kHashJoin));
  auto result = executor_.Execute(q, *plan);
  ASSERT_TRUE(result.ok());
  // attr = parent.id % 5 -> 5 groups, each with 2 parents x 4 children = 8.
  ASSERT_EQ(result->agg_rows.size(), 5u);
  for (const AggRow& row : result->agg_rows) {
    EXPECT_DOUBLE_EQ(row.agg_values[0], 8.0);
  }
  // Group attr=0 covers parents {0, 5}; children ids {0,5,10,15,20,25,30,
  // 35}; min id = 0; sum v = sum(id % 4) = 0+1+2+3+0+1+2+3 = 12.
  const AggRow& g0 = result->agg_rows[0];
  EXPECT_DOUBLE_EQ(g0.group_keys[0], 0.0);
  EXPECT_DOUBLE_EQ(g0.agg_values[1], 12.0);
  EXPECT_DOUBLE_EQ(g0.agg_values[2], 0.0);
}

TEST_F(ExecTest, AvgAggregation) {
  Query q;
  q.name = "exec_avg";
  q.relations = {RelationRef{"child", "c"}};
  AggSpec avg_v;
  avg_v.func = AggFunc::kAvg;
  avg_v.has_arg = true;
  avg_v.arg = ColumnRef{0, "v"};
  q.aggregates = {avg_v};
  auto plan = MakeAggregate(PhysicalOp::kSortAggregate, MakeSeqScan(0, {}));
  auto result = executor_.Execute(q, *plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->agg_rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result->agg_rows[0].agg_values[0], 1.5);  // mean of 0..3.
}

TEST_F(ExecTest, IntermediateCapTriggers) {
  ExecOptions options;
  options.max_intermediate_tuples = 50;
  Executor bounded(micro_.db.get(), options);
  Query q;
  q.name = "exec_cap";
  q.relations = {RelationRef{"child", "c1"}, RelationRef{"child", "c2"}};
  auto plan = MakeJoin(PhysicalOp::kNestedLoopJoin, MakeSeqScan(0, {}),
                       MakeSeqScan(1, {}), {});
  auto result = bounded.Execute(q, *plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecTest, NodeOutputRowsRecorded) {
  Query q = micro_.JoinQuery("exec_counts");
  auto plan = JoinPlan(PhysicalOp::kHashJoin);
  auto result = executor_.Execute(q, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node_output_rows.at(plan.get()), 40);
  EXPECT_EQ(result->node_output_rows.at(plan->child(0)), 40);
  EXPECT_EQ(result->node_output_rows.at(plan->child(1)), 10);
}

// --- Cross-plan result equivalence ---

// Executes one generated query under the DP plan, the GEQO plan, and
// several random (connected) join orders, asserting identical result
// multisets: query semantics must be invariant to the join order and to
// every physical choice the planners make. The query carries GROUP BY +
// COUNT(*) + SUM so the comparison sees row *content*, not just counts.
class CrossPlanTest : public ::testing::Test {
 protected:
  Engine& engine() { return testing::SharedEngine(); }

  // Sorted (group_keys, agg_values) rows — the canonical result multiset.
  // COUNT/SUM over integer-valued columns are exact in double, so rows
  // from different plans compare bit-for-bit.
  using CanonicalRows = std::vector<std::pair<std::vector<double>,
                                              std::vector<double>>>;
  static CanonicalRows CanonicalAggRows(const ExecResult& result) {
    CanonicalRows rows;
    for (const AggRow& row : result.agg_rows) {
      rows.emplace_back(row.group_keys, row.agg_values);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  // A random relation order that keeps every prefix connected, so
  // left-deep trees over it never cross-product into the tuple cap.
  static std::vector<int> RandomConnectedOrder(const Query& q, Rng* rng) {
    std::vector<int> order;
    RelSet placed = 0;
    order.push_back(static_cast<int>(
        rng->UniformInt(0, q.num_relations() - 1)));
    placed = RelSetOf(order[0]);
    while (static_cast<int>(order.size()) < q.num_relations()) {
      std::vector<int> frontier = RelSetMembers(q.NeighborsOfSet(placed));
      int next = frontier[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(frontier.size()) - 1))];
      order.push_back(next);
      placed |= RelSetOf(next);
    }
    return order;
  }
};

TEST_F(CrossPlanTest, DpGeqoAndRandomOrdersAgreeOnResultMultisets) {
  WorkloadGenerator gen(&engine().catalog(), 515);
  auto generated = gen.GenerateQuery(4, "xplan_equiv");
  ASSERT_TRUE(generated.ok());
  Query q = std::move(*generated);
  // Content-sensitive result: group + count + sum over the group column.
  q.group_by.clear();
  q.aggregates.clear();
  const auto& rel0 = q.relations[0];
  auto table = engine().catalog().GetTable(rel0.table);
  ASSERT_TRUE(table.ok());
  const ColumnDef* group_col = nullptr;
  for (const auto& col : (*table)->columns) {
    if (col.distribution == ValueDistribution::kUniform ||
        col.distribution == ValueDistribution::kZipf) {
      group_col = &col;
      break;
    }
  }
  ASSERT_NE(group_col, nullptr);
  q.group_by.push_back(ColumnRef{0, group_col->name});
  AggSpec count_star;
  count_star.func = AggFunc::kCount;
  AggSpec sum_key;
  sum_key.func = AggFunc::kSum;
  sum_key.has_arg = true;
  sum_key.arg = ColumnRef{0, group_col->name};
  q.aggregates = {count_star, sum_key};

  Executor executor(&engine().db());

  auto dp_plan = engine().expert().Optimize(q);  // n=4 <= threshold: DP.
  ASSERT_TRUE(dp_plan.ok());
  auto dp_result = executor.Execute(q, **dp_plan);
  ASSERT_TRUE(dp_result.ok()) << dp_result.status().ToString();
  const CanonicalRows reference = CanonicalAggRows(*dp_result);
  ASSERT_FALSE(reference.empty());

  OptimizerOptions geqo_options = engine().expert().options();
  geqo_options.geqo_threshold = 1;  // Force the genetic path.
  TraditionalOptimizer geqo(&engine().catalog(), &engine().cost_model(),
                            geqo_options);
  auto geqo_plan = geqo.Optimize(q);
  ASSERT_TRUE(geqo_plan.ok());
  auto geqo_result = executor.Execute(q, **geqo_plan);
  ASSERT_TRUE(geqo_result.ok()) << geqo_result.status().ToString();
  EXPECT_EQ(geqo_result->join_rows, dp_result->join_rows);
  EXPECT_EQ(CanonicalAggRows(*geqo_result), reference) << "GEQO plan";

  Rng rng(99);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<int> order = RandomConnectedOrder(q, &rng);
    auto tree = LeftDeepTree(order);
    auto plan = engine().expert().PhysicalizeJoinTree(q, *tree);
    ASSERT_TRUE(plan.ok());
    auto result = executor.Execute(q, **plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->join_rows, dp_result->join_rows)
        << "order " << tree->ToString(q);
    EXPECT_EQ(CanonicalAggRows(*result), reference)
        << "order " << tree->ToString(q);
  }
}

// --- Latency simulator ---

class LatencyTest : public ::testing::Test {
 protected:
  LatencyTest()
      : oracle_(micro_.db.get()),
        sim_(&micro_.catalog, &oracle_, NoiselessParams()) {}

  static LatencyParams NoiselessParams() {
    LatencyParams p;
    p.noise_sigma = 0.0;
    return p;
  }

  testing::MicroDb micro_;
  TrueCardinalityOracle oracle_;
  LatencySimulator sim_;
};

TEST_F(LatencyTest, DeterministicAndPositive) {
  Query q = micro_.JoinQuery("lat_det");
  auto plan = MakeJoin(PhysicalOp::kHashJoin, MakeSeqScan(1, {}),
                       MakeSeqScan(0, {}), {0});
  double a = sim_.SimulateMs(q, *plan);
  double b = sim_.SimulateMs(q, *plan);
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);
}

TEST_F(LatencyTest, CatastrophicPlansCostMore) {
  // Cross product of child x child then filter-join vs direct join.
  Query q;
  q.name = "lat_cat";
  q.relations = {RelationRef{"child", "c1"}, RelationRef{"child", "c2"}};
  q.joins.push_back(JoinPredicate{ColumnRef{0, "pid"}, ColumnRef{1, "pid"}});
  auto good = MakeJoin(PhysicalOp::kHashJoin, MakeSeqScan(0, {}),
                       MakeSeqScan(1, {}), {0});
  auto bad = MakeJoin(PhysicalOp::kNestedLoopJoin, MakeSeqScan(0, {}),
                      MakeSeqScan(1, {}), {0});
  EXPECT_LT(sim_.SimulateMs(q, *good), sim_.SimulateMs(q, *bad));
}

TEST_F(LatencyTest, NoiseIsDeterministicPerPlan) {
  LatencyParams noisy;
  noisy.noise_sigma = 0.1;
  LatencySimulator sim(&micro_.catalog, &oracle_, noisy);
  Query q = micro_.JoinQuery("lat_noise");
  auto plan = MakeJoin(PhysicalOp::kHashJoin, MakeSeqScan(1, {}),
                       MakeSeqScan(0, {}), {0});
  EXPECT_EQ(sim.SimulateMs(q, *plan), sim.SimulateMs(q, *plan));
  // A different operator draws different noise and different work.
  auto other = MakeJoin(PhysicalOp::kMergeJoin, MakeSeqScan(1, {}),
                        MakeSeqScan(0, {}), {0});
  EXPECT_NE(sim.SimulateMs(q, *plan), sim.SimulateMs(q, *other));
}

TEST_F(LatencyTest, SimulatorDisagreesWithCostModelOrdering) {
  // The paper's premise: cost(model) and latency rank some plan pairs
  // differently. Verify such a pair exists in the shared engine by
  // scanning a few queries (cost-optimal plan != latency-optimal plan for
  // at least one operator substitution).
  Engine& engine = testing::SharedEngine();
  Query q;
  q.name = "lat_vs_cost";
  q.relations = {RelationRef{"cast_info", "ci"}, RelationRef{"title", "t"}};
  q.joins.push_back(
      JoinPredicate{ColumnRef{0, "movie_id"}, ColumnRef{1, "id"}});
  auto hash = MakeJoin(PhysicalOp::kHashJoin, MakeSeqScan(0, {}),
                       MakeSeqScan(1, {}), {0});
  auto inlj = MakeJoin(PhysicalOp::kIndexNestedLoopJoin, MakeSeqScan(0, {}),
                       MakeSeqScan(1, {}), {0}, 0);
  double hash_cost = engine.cost_model().Annotate(q, hash.get());
  double inlj_cost = engine.cost_model().Annotate(q, inlj.get());
  double hash_lat = engine.latency().SimulateMs(q, *hash);
  double inlj_lat = engine.latency().SimulateMs(q, *inlj);
  // Both metrics are positive; the *ratios* must differ substantially
  // (random pages are relatively cheaper in the simulator).
  double cost_ratio = inlj_cost / hash_cost;
  double lat_ratio = inlj_lat / hash_lat;
  EXPECT_GT(cost_ratio / lat_ratio, 1.5)
      << "cost model should over-penalize index nested loops relative to "
         "the latency simulator";
}

}  // namespace
}  // namespace hfq
