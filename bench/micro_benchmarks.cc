// MICRO — google-benchmark microbenchmarks for the components every
// experiment leans on: network forward/backward, featurization, cost
// annotation, oracle counting, planning, and execution.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/hands_free.h"
#include "exec/executor.h"
#include "nn/layer.h"
#include "nn/mlp.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "optimizer/plan_gen.h"
#include "plan/physical_plan.h"
#include "rejoin/featurizer.h"
#include "rejoin/rejoin.h"
#include "serve/plan_server.h"
#include "sql/parser.h"

namespace hfq {
namespace {

Engine& BenchEngine() {
  static std::unique_ptr<Engine> engine = bench::MakeEngine(0.1);
  return *engine;
}

Query BenchQuery(int n, uint64_t seed) {
  WorkloadGenerator gen(&BenchEngine().catalog(), seed);
  auto q = gen.GenerateQuery(n, "micro" + std::to_string(seed) +
                                    "_" + std::to_string(n));
  HFQ_CHECK(q.ok());
  return std::move(*q);
}

void BM_MlpForward(benchmark::State& state) {
  Rng rng(1);
  MlpConfig config;
  config.input_dim = 612;  // ReJOIN featurization at 17 relations.
  config.hidden_dims = {128, 128};
  config.output_dim = 289;
  Mlp mlp(config, &rng);
  Matrix x(1, config.input_dim);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_MlpForward);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(1);
  MlpConfig config;
  config.input_dim = 612;
  config.hidden_dims = {128, 128};
  config.output_dim = 289;
  Mlp mlp(config, &rng);
  Matrix x(1, config.input_dim);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Normal();
  Matrix grad(1, config.output_dim);
  grad.Fill(1e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x));
    benchmark::DoNotOptimize(mlp.Backward(grad));
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_Featurize(benchmark::State& state) {
  Query q = BenchQuery(static_cast<int>(state.range(0)), 7);
  RejoinFeaturizer featurizer(17, &BenchEngine().estimator());
  std::vector<std::unique_ptr<JoinTreeNode>> leaves;
  std::vector<const JoinTreeNode*> subtrees;
  for (int i = 0; i < q.num_relations(); ++i) {
    leaves.push_back(JoinTreeNode::Leaf(i));
    subtrees.push_back(leaves.back().get());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.Featurize(q, subtrees));
  }
}
BENCHMARK(BM_Featurize)->Arg(4)->Arg(10)->Arg(17);

void BM_CostAnnotate(benchmark::State& state) {
  Query q = BenchQuery(6, 11);
  auto plan = BenchEngine().expert().Optimize(q);
  HFQ_CHECK(plan.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BenchEngine().cost_model().Annotate(q, plan->get()));
  }
}
BENCHMARK(BM_CostAnnotate);

void BM_OracleRowsCold(benchmark::State& state) {
  // Fresh oracle per iteration: measures the actual grouped-count sweep.
  Query q = BenchQuery(static_cast<int>(state.range(0)), 13);
  for (auto _ : state) {
    TrueCardinalityOracle oracle(&BenchEngine().db());
    benchmark::DoNotOptimize(
        oracle.Rows(q, RelSetAll(q.num_relations())));
  }
}
BENCHMARK(BM_OracleRowsCold)->Arg(3)->Arg(6);

void BM_OracleRowsCached(benchmark::State& state) {
  Query q = BenchQuery(6, 17);
  TrueCardinalityOracle oracle(&BenchEngine().db());
  oracle.Rows(q, RelSetAll(q.num_relations()));  // Warm the memo.
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Rows(q, RelSetAll(q.num_relations())));
  }
}
BENCHMARK(BM_OracleRowsCached);

void BM_ExpertOptimizeDp(benchmark::State& state) {
  Query q = BenchQuery(static_cast<int>(state.range(0)), 19);
  for (auto _ : state) {
    auto plan = BenchEngine().expert().Optimize(q);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExpertOptimizeDp)->Arg(4)->Arg(8)->Arg(11);

// DP plan-generator scaling across join-graph shape x size, at production
// budgets. Sparse graphs (chains) stay exact far past the historic 3^n
// wall; dense graphs cross the subproblem budget and degrade into a fast
// ResourceExhausted (the GEQO-fallback trigger) — the `exhausted` counter
// records which regime a combo landed in, `subproblems` how much of the
// space it materialized. n <= 12 runs the historic exhaustive subset walk
// (clique-12 is the worst case, seconds per enumeration); n > 12 runs
// connected subgraphs only.
void BM_DpEnumerate(benchmark::State& state) {
  const JoinTopology topologies[] = {JoinTopology::kChain,
                                     JoinTopology::kStar,
                                     JoinTopology::kClique};
  const JoinTopology topology = topologies[state.range(0)];
  const int n = static_cast<int>(state.range(1));
  WorkloadGenerator gen(&BenchEngine().catalog(), 31);
  auto query = gen.GenerateTopologyQuery(
      topology, n,
      std::string("dp_") + JoinTopologyName(topology) + "_" +
          std::to_string(n));
  HFQ_CHECK(query.ok());
  PlanGenStats last;
  bool exhausted = false;
  for (auto _ : state) {
    PlanGenerator plan_gen(&BenchEngine().expert(), *query);
    auto plan = plan_gen.FindCheapestJoinPlan();
    benchmark::DoNotOptimize(plan);
    exhausted = !plan.ok();
    last = plan_gen.stats();
  }
  state.counters["subproblems"] = static_cast<double>(last.subproblems);
  state.counters["exhausted"] = exhausted ? 1.0 : 0.0;
}
BENCHMARK(BM_DpEnumerate)
    ->ArgNames({"topo", "rels"})
    ->ArgsProduct({{0, 1, 2}, {8, 12, 16, 20}})
    ->Unit(benchmark::kMillisecond);

void BM_ExpertOptimizeGeqo(benchmark::State& state) {
  Query q = BenchQuery(14, 23);
  for (auto _ : state) {
    auto plan = BenchEngine().expert().Optimize(q);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExpertOptimizeGeqo);

void BM_LatencySimulate(benchmark::State& state) {
  Query q = BenchQuery(8, 29);
  auto plan = BenchEngine().expert().Optimize(q);
  HFQ_CHECK(plan.ok());
  BenchEngine().latency().SimulateMs(q, **plan);  // Warm oracle memo.
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchEngine().latency().SimulateMs(q, **plan));
  }
}
BENCHMARK(BM_LatencySimulate);

void BM_ExecuteHashJoinPlan(benchmark::State& state) {
  Query q = BenchQuery(4, 31);
  q.aggregates.clear();
  q.group_by.clear();
  auto plan = BenchEngine().expert().Optimize(q);
  HFQ_CHECK(plan.ok());
  Executor executor(&BenchEngine().db());
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = executor.Execute(q, **plan);
    HFQ_CHECK(result.ok());
    tuples = result->join_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(tuples),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteHashJoinPlan);

// --- Per-operator execution A/B -----------------------------------------
// The same two-relation IMDB-like join (cast_info JOIN title, one
// selection per side) forced through each physical operator, under both
// engines: engine:0 is the vectorized default, engine:1 the
// tuple-at-a-time reference. Adjacent rows are an interleaved
// same-machine A/B of the vectorization payoff per operator; both
// engines produce bit-identical ExecResults (tests/exec_test.cc pins
// this), so tuples_per_s compares like for like.

ExecOptions ExecEngineArg(int64_t arg) {
  ExecOptions options;
  options.engine =
      arg == 0 ? ExecEngine::kVectorized : ExecEngine::kTupleAtATime;
  return options;
}

const Query& ExecBenchJoinQuery() {
  static const Query* query = [] {
    auto q = ParseSql(
        "SELECT count(*) FROM title t, cast_info ci "
        "WHERE ci.movie_id = t.id AND t.production_year > 20 AND "
        "ci.nr_order = 1",
        BenchEngine().catalog());
    HFQ_CHECK(q.ok());
    // Executor benches measure the join pipeline, not aggregation.
    q->aggregates.clear();
    q->group_by.clear();
    return new Query(std::move(*q));
  }();
  return *query;
}

// cast_info (rel 1, selection 1: nr_order = 1) outer, title (rel 0,
// selection 0: production_year > 20) inner. INLJ probes title's
// built-in BTree id index through join predicate 0.
PlanNodePtr ExecBenchJoinPlan(PhysicalOp op) {
  PlanNodePtr outer = MakeSeqScan(1, {1});
  PlanNodePtr inner = MakeSeqScan(0, {0});
  const int probe = op == PhysicalOp::kIndexNestedLoopJoin ? 0 : -1;
  return MakeJoin(op, std::move(outer), std::move(inner), {0}, probe);
}

void RunExecJoinBench(benchmark::State& state, PhysicalOp op) {
  const Query& q = ExecBenchJoinQuery();
  PlanNodePtr plan = ExecBenchJoinPlan(op);
  Executor executor(&BenchEngine().db(), ExecEngineArg(state.range(0)));
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = executor.Execute(q, *plan);
    HFQ_CHECK(result.ok());
    tuples = result->join_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(tuples),
      benchmark::Counter::kIsRate);
}

void BM_ExecuteScanFilterPlan(benchmark::State& state) {
  static const Query* query = [] {
    auto q = ParseSql(
        "SELECT count(*) FROM cast_info ci WHERE ci.nr_order = 1",
        BenchEngine().catalog());
    HFQ_CHECK(q.ok());
    q->aggregates.clear();
    q->group_by.clear();
    return new Query(std::move(*q));
  }();
  PlanNodePtr plan = MakeSeqScan(0, {0});
  Executor executor(&BenchEngine().db(), ExecEngineArg(state.range(0)));
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = executor.Execute(*query, *plan);
    HFQ_CHECK(result.ok());
    tuples = result->output_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(tuples),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteScanFilterPlan)->ArgNames({"engine"})->Arg(0)->Arg(1);

void BM_ExecuteNestedLoopJoinPlan(benchmark::State& state) {
  RunExecJoinBench(state, PhysicalOp::kNestedLoopJoin);
}
BENCHMARK(BM_ExecuteNestedLoopJoinPlan)
    ->ArgNames({"engine"})
    ->Arg(0)
    ->Arg(1);

void BM_ExecuteMergeJoinPlan(benchmark::State& state) {
  RunExecJoinBench(state, PhysicalOp::kMergeJoin);
}
BENCHMARK(BM_ExecuteMergeJoinPlan)->ArgNames({"engine"})->Arg(0)->Arg(1);

void BM_ExecuteIndexNestedLoopJoinPlan(benchmark::State& state) {
  RunExecJoinBench(state, PhysicalOp::kIndexNestedLoopJoin);
}
BENCHMARK(BM_ExecuteIndexNestedLoopJoinPlan)
    ->ArgNames({"engine"})
    ->Arg(0)
    ->Arg(1);

// Join + grouped aggregation: the heaviest per-tuple column-access path in
// the executor (every group key and aggregate argument is fetched per
// surviving tuple). Exercises the once-per-operator column binding — the
// old code re-resolved each ColumnRef with two string-keyed hash lookups
// per tuple per predicate.
void BM_ExecuteGroupByAggregatePlan(benchmark::State& state) {
  QueryShapeOptions shape;
  shape.aggregate_prob = 1.0;
  shape.group_by_prob = 1.0;
  WorkloadGenerator gen(&BenchEngine().catalog(), 37, shape,
                       &BenchEngine().db());
  auto q = gen.GenerateQuery(4, "micro_groupby");
  HFQ_CHECK(q.ok());
  HFQ_CHECK(!q->group_by.empty());
  auto plan = BenchEngine().expert().Optimize(*q);
  HFQ_CHECK(plan.ok());
  Executor executor(&BenchEngine().db());
  int64_t tuples = 0;
  for (auto _ : state) {
    auto result = executor.Execute(*q, **plan);
    HFQ_CHECK(result.ok());
    tuples = result->join_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(tuples),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteGroupByAggregatePlan);

void BM_ParseSql(benchmark::State& state) {
  const std::string sql =
      "SELECT count(*) FROM title t, cast_info ci, movie_keyword mk "
      "WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND "
      "t.production_year > 20 AND ci.nr_order = 1";
  for (auto _ : state) {
    auto q = ParseSql(sql, BenchEngine().catalog());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseSql);

// 8 episodes x 8 steps = a 64-sample update at ReJOIN dimensions.
std::vector<Episode> MakeUpdateBatch(int episodes, int steps, int state_dim,
                                     int action_dim) {
  Rng rng(3);
  std::vector<Episode> batch;
  for (int e = 0; e < episodes; ++e) {
    Episode episode;
    for (int s = 0; s < steps; ++s) {
      Transition t;
      t.state.resize(static_cast<size_t>(state_dim));
      for (auto& v : t.state) v = rng.Normal();
      t.mask.assign(static_cast<size_t>(action_dim), true);
      t.action = static_cast<int>(rng.UniformInt(0, action_dim - 1));
      t.old_prob = 1.0 / static_cast<double>(action_dim);
      t.reward = s + 1 == steps ? rng.Uniform() : 0.0;
      episode.steps.push_back(std::move(t));
    }
    batch.push_back(std::move(episode));
  }
  return batch;
}

// The minibatched policy+value update (one forward + one backward per
// epoch). Compare against BM_PolicyUpdatePerSampleReference below.
void BM_PolicyUpdate(benchmark::State& state) {
  PolicyGradientConfig config;
  config.hidden_dims = {128, 128};
  PolicyGradientAgent agent(612, 289, config, 37);
  std::vector<Episode> batch = MakeUpdateBatch(8, 8, 612, 289);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Update(batch));
  }
}
BENCHMARK(BM_PolicyUpdate);

// Reference re-implementation of the pre-batching update path (two policy
// forwards + one backward per sample per PPO epoch, plus per-sample value
// passes) over the same 64-sample batch: the speedup of BM_PolicyUpdate
// over this is the payoff of minibatching.
void BM_PolicyUpdatePerSampleReference(benchmark::State& state) {
  constexpr double kMaskedLogit = -1e9;
  constexpr int kActions = 289;
  PolicyGradientConfig config;
  config.hidden_dims = {128, 128};
  PolicyGradientAgent agent(612, 289, config, 37);
  Mlp& policy = agent.policy_net();
  Mlp& value = agent.value_net();
  Adam policy_opt(config.policy_lr);
  Adam value_opt(config.value_lr);
  std::vector<Episode> batch = MakeUpdateBatch(8, 8, 612, 289);
  for (auto _ : state) {
    struct Sample {
      const Transition* t;
      double ret;
    };
    std::vector<Sample> samples;
    for (const auto& ep : batch) {
      double ret = 0.0;
      std::vector<double> rets(ep.steps.size());
      for (size_t i = ep.steps.size(); i-- > 0;) {
        ret = ep.steps[i].reward + config.gamma * ret;
        rets[i] = ret;
      }
      for (size_t i = 0; i < ep.steps.size(); ++i) {
        samples.push_back({&ep.steps[i], rets[i]});
      }
    }
    std::vector<double> advantages(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      Matrix v = value.Forward(Matrix::RowVector(samples[i].t->state));
      advantages[i] = samples[i].ret - v.At(0, 0);
    }
    double mean = 0.0, var = 0.0;
    for (double a : advantages) mean += a;
    mean /= static_cast<double>(advantages.size());
    for (double a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(advantages.size());
    double stddev = std::sqrt(std::max(var, 1e-12));
    for (double& a : advantages) a = (a - mean) / stddev;

    for (int epoch = 0; epoch < config.ppo_epochs; ++epoch) {
      policy.ZeroGrads();
      for (size_t i = 0; i < samples.size(); ++i) {
        const Transition& t = *samples[i].t;
        Matrix logits = policy.Forward(Matrix::RowVector(t.state));
        for (int a = 0; a < kActions; ++a) {
          if (!t.mask[static_cast<size_t>(a)]) logits.At(0, a) = kMaskedLogit;
        }
        Matrix probs = Softmax(logits);
        const double p = std::max(probs.At(0, t.action), 1e-12);
        const double ratio = p / std::max(t.old_prob, 1e-12);
        const double adv = advantages[i];
        const double clipped = std::clamp(ratio, 1.0 - config.clip_epsilon,
                                          1.0 + config.clip_epsilon);
        const bool active = ratio * adv <= clipped * adv;
        const double weight = active ? adv * ratio : 0.0;
        Matrix grad(1, kActions);
        for (int a = 0; a < kActions; ++a) {
          double g = probs.At(0, a) - (a == t.action ? 1.0 : 0.0);
          grad.At(0, a) = weight * g / static_cast<double>(samples.size());
        }
        Matrix ent_grad;
        SoftmaxEntropy(logits, config.entropy_coef, &ent_grad);
        for (int a = 0; a < kActions; ++a) {
          if (t.mask[static_cast<size_t>(a)]) {
            grad.At(0, a) +=
                ent_grad.At(0, a) / static_cast<double>(samples.size());
          }
        }
        (void)policy.Forward(Matrix::RowVector(t.state));
        policy.Backward(grad);
      }
      ClipGradientsByGlobalNorm(policy.Grads(), config.max_grad_norm);
      policy_opt.Step(policy.Params(), policy.Grads());
    }

    value.ZeroGrads();
    for (const auto& s : samples) {
      Matrix pred = value.Forward(Matrix::RowVector(s.t->state));
      Matrix target = Matrix::Constant(1, 1, s.ret);
      Matrix grad;
      MseLoss(pred, target, &grad);
      grad.Scale(1.0 / static_cast<double>(samples.size()));
      value.Backward(grad);
    }
    ClipGradientsByGlobalNorm(value.Grads(), config.max_grad_norm);
    value_opt.Step(value.Params(), value.Grads());
    benchmark::DoNotOptimize(policy.Grads());
  }
}
BENCHMARK(BM_PolicyUpdatePerSampleReference);

// Rollout-throughput scaling curve: RejoinTrainer::Train's collection
// phase on 1/2/4/8 workers over a fixed 6-relation workload.
// episodes_per_update equals the per-iteration budget, so one iteration is
// one frozen-policy collection round plus a single batched update —
// collection dominates the time, and items/sec reports episode throughput.
void BM_RejoinRolloutCollection(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kEpisodesPerIter = 32;
  Engine& engine = BenchEngine();
  std::vector<Query> workload;
  for (int i = 0; i < 4; ++i) workload.push_back(BenchQuery(6, 41 + i));
  // Thread-safe reward: expert costs are precomputed, so worker threads
  // only run PhysicalizeJoinTree + cost annotation (whose shared substrate
  // is internally synchronized) and read this const map.
  auto expert_cost = std::make_shared<std::map<std::string, double>>();
  for (const Query& q : workload) {
    auto plan = engine.expert().Optimize(q);
    HFQ_CHECK(plan.ok());
    (*expert_cost)[q.name] = std::max(1.0, (*plan)->est_cost);
  }
  JoinRewardFn reward = [&engine, expert_cost](const Query& q,
                                               const JoinTreeNode& tree) {
    auto plan = engine.expert().PhysicalizeJoinTree(q, tree);
    HFQ_CHECK(plan.ok());
    return -std::log10(std::max(1.0, (*plan)->est_cost) /
                       expert_cost->at(q.name));
  };
  RejoinFeaturizer featurizer(8, &engine.estimator());
  JoinOrderEnv primary(&featurizer, reward);
  std::vector<std::unique_ptr<JoinOrderEnv>> extra_envs;
  std::vector<JoinOrderEnv*> extra_ptrs;
  for (int w = 1; w < workers; ++w) {
    extra_envs.push_back(std::make_unique<JoinOrderEnv>(&featurizer, reward));
    extra_ptrs.push_back(extra_envs.back().get());
  }
  RejoinConfig config;
  config.pg.hidden_dims = {128, 128};
  config.episodes_per_update = kEpisodesPerIter;
  config.num_rollout_workers = workers;
  RejoinTrainer trainer(&primary, config, 53);
  trainer.SetWorkerEnvs(extra_ptrs);
  for (auto _ : state) {
    trainer.Train(workload, kEpisodesPerIter);
  }
  state.SetItemsProcessed(state.iterations() * kEpisodesPerIter);
}
BENCHMARK(BM_RejoinRolloutCollection)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Frontier evaluation, the per-candidate way the searchers used to do it:
// N separate single-row forwards at ReJOIN inference dimensions. Pair with
// BM_FrontierForwardBatched at the same Arg to read off the batching
// payoff per frontier size (beam-4 fans out ~4 x valid-actions rows).
void BM_FrontierForwardPerCandidate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  MlpConfig config;
  config.input_dim = 612;
  config.hidden_dims = {128, 128};
  config.output_dim = 289;
  Mlp mlp(config, &rng);
  std::vector<Matrix> rows;
  for (int i = 0; i < n; ++i) {
    Matrix x(1, config.input_dim);
    for (int64_t j = 0; j < x.size(); ++j) x.data()[j] = rng.Normal();
    rows.push_back(std::move(x));
  }
  MlpWorkspace ws;
  for (auto _ : state) {
    for (const Matrix& x : rows) {
      benchmark::DoNotOptimize(mlp.ForwardInto(x, &ws));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FrontierForwardPerCandidate)->Arg(4)->Arg(16)->Arg(64);

// The same N frontier rows evaluated in ONE matrix forward (the batched
// search core's inner loop). Row i of the output is bit-identical to the
// per-candidate run above; the speedup is pure batching.
void BM_FrontierForwardBatched(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  MlpConfig config;
  config.input_dim = 612;
  config.hidden_dims = {128, 128};
  config.output_dim = 289;
  Mlp mlp(config, &rng);
  Matrix batch(n, config.input_dim);
  for (int64_t j = 0; j < batch.size(); ++j) batch.data()[j] = rng.Normal();
  MlpWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.ForwardBatchInto(batch, &ws));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FrontierForwardBatched)->Arg(4)->Arg(16)->Arg(64);

// Plan-time search cost: one searched inference of a 7-relation query
// under each mode. Greedy is the single-rollout floor; best-of-8 pays ~8
// rollouts; beam-4 pays ~width x valid-actions expansions plus the value
// head. Together with fig3c this is the latency side of the plan-quality
// trade-off the eval matrix measures.
void BM_PlanSearch(benchmark::State& state) {
  static bench::RejoinHarness* harness = [] {
    auto* h = new bench::RejoinHarness(
        bench::MakeRejoinHarness(&BenchEngine(), 8));
    std::vector<Query> workload;
    for (int i = 0; i < 3; ++i) workload.push_back(BenchQuery(7, 71 + i));
    h->trainer->Train(workload, 64);
    return h;
  }();
  const Query query = BenchQuery(7, 71);
  SearchConfig config;
  switch (state.range(0)) {
    case 0:
      config.mode = SearchMode::kGreedy;
      break;
    case 1:
      config.mode = SearchMode::kBestOfK;
      config.best_of_k = 8;
      break;
    default:
      config.mode = SearchMode::kBeam;
      config.beam_width = 4;
      break;
  }
  double planning_ms = 0.0;
  SearchResult found;
  for (auto _ : state) {
    auto tree = harness->trainer->PlanWithSearch(query, config, &planning_ms,
                                                 &found);
    benchmark::DoNotOptimize(tree);
  }
  state.SetLabel(SearchConfigName(config));
  // The per-strategy planning time (the searcher's own stopwatch, i.e.
  // the Figure 3c charge) next to the plan cost it buys — the trade-off
  // in one row.
  state.counters["planning_ms"] = planning_ms;
  state.counters["plan_cost"] = found.cost;
}
BENCHMARK(BM_PlanSearch)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t n = sorted_in_place->size();
  if (n == 0) return 0.0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(n - 1));
  return (*sorted_in_place)[idx];
}

// Sustained serving throughput and tail latency of PlanServer: each bench
// thread hammers Plan() on a fixed query mix under a finite per-request
// budget. warm=0 disables the plan cache (every request is a real
// budget-tiered search — the cold serving floor); warm=1 pre-warms the
// cache so the loop measures the fingerprint-hit path. items/sec is
// aggregate plans/sec (UseRealTime); p50_ms/p99_ms are per-request
// service-time percentiles pooled across threads.
void BM_PlanServer(benchmark::State& state) {
  static HandsFreeOptimizer* optimizer = [] {
    HandsFreeConfig config;
    config.strategy = TrainingStrategy::kIncrementalHybrid;
    config.max_relations = 8;
    config.training_episodes = 16;
    config.seed = 97;
    config.incremental_pg.hidden_dims = {64};
    auto* opt = new HandsFreeOptimizer(&BenchEngine(), config);
    std::vector<Query> workload;
    for (int i = 0; i < 4; ++i) workload.push_back(BenchQuery(5, 2100 + i));
    HFQ_CHECK(opt->Train(workload).ok());
    return opt;
  }();
  static std::vector<Query>* serving = [] {
    auto* queries = new std::vector<Query>;
    for (int i = 0; i < 6; ++i) {
      queries->push_back(BenchQuery(4 + i % 3, 2200 + i));
    }
    return queries;
  }();
  static PlanServer* server = nullptr;
  static std::mutex latency_mu;
  static std::vector<double> latencies;
  static std::atomic<int> threads_done{0};

  constexpr double kBudgetMs = 1.0;
  const bool warm = state.range(0) != 0;
  // Thread 0 sets up before the start barrier releases any iteration.
  if (state.thread_index() == 0) {
    PlanServerConfig config;
    config.num_workers = state.threads();
    config.enable_cache = warm;
    server = new PlanServer(optimizer, config);
    HFQ_CHECK(server->PublishPolicy().ok());
    if (warm) {
      for (const Query& q : *serving) {
        HFQ_CHECK(server->Plan(q, kBudgetMs).ok());
      }
    }
    latencies.clear();
    threads_done.store(0);
  }

  std::vector<double> local;
  size_t next = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const Query& q = (*serving)[next++ % serving->size()];
    auto response = server->Plan(q, kBudgetMs);
    HFQ_CHECK(response.ok());
    benchmark::DoNotOptimize(response->cost);
    local.push_back(response->service_ms);
  }
  state.SetItemsProcessed(state.iterations());

  {
    std::lock_guard<std::mutex> lock(latency_mu);
    latencies.insert(latencies.end(), local.begin(), local.end());
  }
  threads_done.fetch_add(1);
  if (state.thread_index() == 0) {
    while (threads_done.load() != state.threads()) {
      std::this_thread::yield();
    }
    state.counters["p50_ms"] = Percentile(&latencies, 0.50);
    state.counters["p99_ms"] = Percentile(&latencies, 0.99);
    state.counters["cache_hits"] =
        static_cast<double>(server->stats().cache_hits);
    delete server;
    server = nullptr;
  }
}
BENCHMARK(BM_PlanServer)
    ->ArgNames({"warm"})
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hfq

BENCHMARK_MAIN();
