#include "rl/search_context.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hfq {
namespace {

// Shared per-row arithmetic behind PredictorPolicy::Probabilities and its
// batched override: softmax over negated predictions, max-shifted for
// stability. One definition keeps the serial and batched paths bit-identical
// by construction.
std::vector<double> PredictorProbsFromPreds(const std::vector<double>& preds,
                                            const std::vector<bool>& mask) {
  HFQ_CHECK(preds.size() == mask.size());
  double best = 0.0;
  bool any = false;
  for (size_t a = 0; a < preds.size(); ++a) {
    if (!mask[a]) continue;
    if (!any || -preds[a] > best) best = -preds[a];
    any = true;
  }
  HFQ_CHECK_MSG(any, "no valid action");
  std::vector<double> probs(preds.size(), 0.0);
  double total = 0.0;
  for (size_t a = 0; a < preds.size(); ++a) {
    if (!mask[a]) continue;
    probs[a] = std::exp(-preds[a] - best);
    total += probs[a];
  }
  for (double& p : probs) p /= total;
  return probs;
}

// Shared per-row arithmetic behind PredictorPolicy::Value and its batched
// override: the negated best predicted outcome among valid actions.
double PredictorValueFromPreds(const std::vector<double>& preds,
                               const std::vector<bool>& mask) {
  HFQ_CHECK(preds.size() == mask.size());
  double best = 0.0;
  bool any = false;
  for (size_t a = 0; a < preds.size(); ++a) {
    if (!mask[a]) continue;
    if (!any || -preds[a] > best) best = -preds[a];
    any = true;
  }
  // Terminal states expose an empty mask; the best achievable outcome of
  // "no decision left" is neutral.
  return any ? best : 0.0;
}

}  // namespace

std::vector<std::vector<double>> FrozenPolicy::ScoreActionsBatch(
    const std::vector<const std::vector<double>*>& states,
    const std::vector<const std::vector<bool>*>& masks,
    MlpWorkspace* ws) const {
  HFQ_CHECK(states.size() == masks.size());
  std::vector<std::vector<double>> out;
  out.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.push_back(Probabilities(*states[i], *masks[i], ws));
  }
  return out;
}

std::vector<double> FrozenPolicy::ValueBatch(
    const std::vector<const std::vector<double>*>& states,
    const std::vector<const std::vector<bool>*>& masks,
    MlpWorkspace* ws) const {
  HFQ_CHECK(states.size() == masks.size());
  std::vector<double> out;
  out.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.push_back(Value(*states[i], *masks[i], ws));
  }
  return out;
}

AgentPolicy::AgentPolicy(const PolicyGradientAgent* agent) : agent_(agent) {
  HFQ_CHECK(agent != nullptr);
}

int AgentPolicy::Greedy(const std::vector<double>& state,
                        const std::vector<bool>& mask,
                        MlpWorkspace* ws) const {
  return agent_->GreedyAction(state, mask, ws);
}

int AgentPolicy::Sample(const std::vector<double>& state,
                        const std::vector<bool>& mask, Rng* rng,
                        MlpWorkspace* ws) const {
  return agent_->SampleAction(state, mask, rng, ws);
}

std::vector<double> AgentPolicy::Probabilities(
    const std::vector<double>& state, const std::vector<bool>& mask,
    MlpWorkspace* ws) const {
  return agent_->ActionProbabilities(state, mask, ws);
}

double AgentPolicy::Value(const std::vector<double>& state,
                          const std::vector<bool>& mask,
                          MlpWorkspace* ws) const {
  (void)mask;
  return agent_->Value(state, ws);
}

std::vector<std::vector<double>> AgentPolicy::ScoreActionsBatch(
    const std::vector<const std::vector<double>*>& states,
    const std::vector<const std::vector<bool>*>& masks,
    MlpWorkspace* ws) const {
  return agent_->ActionProbabilitiesBatch(states, masks, ws);
}

std::vector<double> AgentPolicy::ValueBatch(
    const std::vector<const std::vector<double>*>& states,
    const std::vector<const std::vector<bool>*>& masks,
    MlpWorkspace* ws) const {
  (void)masks;
  return agent_->ValueBatch(states, ws);
}

PredictorPolicy::PredictorPolicy(const RewardPredictor* predictor)
    : predictor_(predictor) {
  HFQ_CHECK(predictor != nullptr);
}

int PredictorPolicy::Greedy(const std::vector<double>& state,
                            const std::vector<bool>& mask,
                            MlpWorkspace* ws) const {
  return predictor_->SelectAction(state, mask, /*epsilon=*/0.0,
                                  /*rng=*/nullptr, ws);
}

std::vector<double> PredictorPolicy::Probabilities(
    const std::vector<double>& state, const std::vector<bool>& mask,
    MlpWorkspace* ws) const {
  // Softmax over negated predictions. The predictor's outcomes are
  // lower-is-better, so the best action gets the largest probability and
  // argmax (lowest-index ties) matches Greedy.
  return PredictorProbsFromPreds(predictor_->PredictAll(state, ws), mask);
}

int PredictorPolicy::Sample(const std::vector<double>& state,
                            const std::vector<bool>& mask, Rng* rng,
                            MlpWorkspace* ws) const {
  HFQ_CHECK(rng != nullptr);
  std::vector<double> probs = Probabilities(state, mask, ws);
  int action = static_cast<int>(rng->Categorical(probs));
  HFQ_CHECK(mask[static_cast<size_t>(action)]);
  return action;
}

double PredictorPolicy::Value(const std::vector<double>& state,
                              const std::vector<bool>& mask,
                              MlpWorkspace* ws) const {
  return PredictorValueFromPreds(predictor_->PredictAll(state, ws), mask);
}

std::vector<std::vector<double>> PredictorPolicy::ScoreActionsBatch(
    const std::vector<const std::vector<double>*>& states,
    const std::vector<const std::vector<bool>*>& masks,
    MlpWorkspace* ws) const {
  HFQ_CHECK(states.size() == masks.size());
  std::vector<std::vector<double>> preds =
      predictor_->PredictAllBatch(states, ws);
  std::vector<std::vector<double>> out;
  out.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.push_back(PredictorProbsFromPreds(preds[i], *masks[i]));
  }
  return out;
}

std::vector<double> PredictorPolicy::ValueBatch(
    const std::vector<const std::vector<double>*>& states,
    const std::vector<const std::vector<bool>*>& masks,
    MlpWorkspace* ws) const {
  HFQ_CHECK(states.size() == masks.size());
  std::vector<std::vector<double>> preds =
      predictor_->PredictAllBatch(states, ws);
  std::vector<double> out;
  out.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.push_back(PredictorValueFromPreds(preds[i], *masks[i]));
  }
  return out;
}

std::unique_ptr<SearchEnv> SearchScratch::AcquireEnv(
    const SearchEnv& prototype) {
  while (!env_pool.empty()) {
    std::unique_ptr<SearchEnv> env = std::move(env_pool.back());
    env_pool.pop_back();
    if (env != nullptr && env->TryCopySearchStateFrom(prototype)) return env;
    // Incompatible pooled env (different concrete type / collaborators):
    // drop it and keep looking.
  }
  return prototype.CloneSearch();
}

}  // namespace hfq
