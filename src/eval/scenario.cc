#include "eval/scenario.h"

#include <set>
#include <utility>

#include "util/rng.h"
#include "util/string_util.h"

namespace hfq {

EvalConfig::EvalConfig() {
  topologies = {JoinTopology::kChain,     JoinTopology::kStar,
                JoinTopology::kClique,    JoinTopology::kSnowflake,
                JoinTopology::kCyclic,    JoinTopology::kDisconnected};
  relation_counts = {3, 5, 8};
  // The DP-infeasible band: JOB-scale join graphs. Sparse shapes (chain,
  // snowflake) the dominance-pruned enumerator could still plan exactly,
  // plus the dense extreme (clique); all are scored against GEQO.
  band_topologies = {JoinTopology::kChain, JoinTopology::kSnowflake,
                     JoinTopology::kClique};
  band_relation_counts = {16};
  data_profiles = {DataProfile{"uniform", 0.0}, DataProfile{"skewed", 1.5}};

  SearchConfig greedy;  // Mode 0: the paper's single-rollout inference.
  SearchConfig best_of_8;
  best_of_8.mode = SearchMode::kBestOfK;
  best_of_8.best_of_k = 8;
  SearchConfig beam_4;
  beam_4.mode = SearchMode::kBeam;
  beam_4.beam_width = 4;
  search_modes = {greedy, best_of_8, beam_4};
  teacher_mode = beam_4;

  PredicateMix lite;
  lite.name = "lite";
  lite.shape.selection_prob = 0.4;
  lite.shape.max_selections_per_relation = 1;
  lite.shape.aggregate_prob = 0.0;
  lite.shape.range_pred_frac = 0.3;
  PredicateMix rich;
  rich.name = "rich";
  rich.shape.selection_prob = 0.9;
  rich.shape.max_selections_per_relation = 2;
  rich.shape.aggregate_prob = 0.6;
  rich.shape.group_by_prob = 0.5;
  rich.shape.range_pred_frac = 0.5;
  predicate_mixes = {lite, rich};
}

EvalConfig ReducedEvalConfig() {
  EvalConfig config;
  config.relation_counts = {3, 4};
  // No band: the smoke matrix must keep emitting the historic v1 bytes
  // that the golden gates and CI diff compare against.
  config.band_topologies.clear();
  config.band_relation_counts.clear();
  config.predicate_mixes.resize(1);
  config.queries_per_cell = 2;
  config.engine_scale = 0.03;
  config.training_episodes = 30;
  config.training_families = 6;
  return config;
}

Status ValidateEvalConfig(const EvalConfig& config) {
  if (config.topologies.empty() || config.relation_counts.empty() ||
      config.data_profiles.empty() || config.predicate_mixes.empty()) {
    return Status::InvalidArgument("eval config has an empty matrix axis");
  }
  for (int n : config.relation_counts) {
    if (n < 2 || n > kMaxRelations) {
      return Status::InvalidArgument(
          StrFormat("relation count %d out of [2, %d]", n, kMaxRelations));
    }
  }
  if (config.dp_max_relations < 2) {
    return Status::InvalidArgument("dp_max_relations must be >= 2");
  }
  if (config.band_topologies.empty() != config.band_relation_counts.empty()) {
    return Status::InvalidArgument(
        "band_topologies and band_relation_counts must be both empty or "
        "both non-empty");
  }
  for (int n : config.band_relation_counts) {
    if (n < 2 || n > kMaxRelations) {
      return Status::InvalidArgument(
          StrFormat("band relation count %d out of [2, %d]", n,
                    kMaxRelations));
    }
  }
  // Band cells must not alias regular cells: the (topology, relations)
  // coordinates have to stay unique or cell keys collide.
  {
    std::set<std::pair<int, int>> shapes;
    for (JoinTopology t : config.topologies) {
      for (int n : config.relation_counts) {
        shapes.insert({static_cast<int>(t), n});
      }
    }
    for (JoinTopology t : config.band_topologies) {
      for (int n : config.band_relation_counts) {
        if (!shapes.insert({static_cast<int>(t), n}).second) {
          return Status::InvalidArgument(
              StrFormat("band cell %s/r%d duplicates a matrix cell",
                        JoinTopologyName(t), n));
        }
      }
    }
  }
  std::set<std::string> names;
  for (const auto& profile : config.data_profiles) {
    if (profile.name.empty() || !names.insert("d:" + profile.name).second) {
      return Status::InvalidArgument("missing/duplicate data profile name");
    }
    if (profile.skew_scale < 0.0) {
      return Status::InvalidArgument("data profile skew_scale < 0");
    }
  }
  for (const auto& mix : config.predicate_mixes) {
    if (mix.name.empty() || !names.insert("p:" + mix.name).second) {
      return Status::InvalidArgument("missing/duplicate predicate mix name");
    }
  }
  if (config.queries_per_cell < 1) {
    return Status::InvalidArgument("queries_per_cell must be >= 1");
  }
  if (config.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (config.engine_scale <= 0.0) {
    return Status::InvalidArgument("engine_scale must be positive");
  }
  if (config.training_episodes < 1 || config.training_families < 1) {
    return Status::InvalidArgument("training budget must be >= 1");
  }
  if (config.search_modes.empty()) {
    return Status::InvalidArgument("search_modes must not be empty");
  }
  if (config.teacher_iterations < 0) {
    return Status::InvalidArgument("teacher_iterations must be >= 0");
  }
  if (config.plan_repeats < 1) {
    return Status::InvalidArgument("plan_repeats must be >= 1");
  }
  if (config.teacher_mode.best_of_k < 1 || config.teacher_mode.beam_width < 1) {
    return Status::InvalidArgument("teacher mode knobs must be >= 1");
  }
  for (const SearchConfig& mode : config.search_modes) {
    if (mode.best_of_k < 1 || mode.beam_width < 1) {
      return Status::InvalidArgument("search mode knobs must be >= 1");
    }
    if (!names.insert("s:" + SearchConfigName(mode)).second) {
      return Status::InvalidArgument("duplicate search mode " +
                                     SearchConfigName(mode));
    }
  }
  return Status::OK();
}

bool EvalConfigHasLargeJoinTier(const EvalConfig& config) {
  for (int n : config.relation_counts) {
    if (n > config.dp_max_relations) return true;
  }
  for (int n : config.band_relation_counts) {
    if (n > config.dp_max_relations) return true;
  }
  return !config.band_topologies.empty();
}

bool EvalConfigIsV1Compatible(const EvalConfig& config) {
  return config.search_modes.size() == 1 &&
         IsDefaultGreedy(config.search_modes[0]) &&
         !EvalConfigHasLargeJoinTier(config) && !config.measured_exec;
}

std::string ScenarioCell::Key(const EvalConfig& config) const {
  return StrFormat(
      "%s/r%d/%s/%s", JoinTopologyName(topology), num_relations,
      config.data_profiles[static_cast<size_t>(data_profile)].name.c_str(),
      config.predicate_mixes[static_cast<size_t>(predicate_mix)]
          .name.c_str());
}

std::vector<ScenarioCell> BuildScenarioCells(const EvalConfig& config) {
  std::vector<ScenarioCell> cells;
  int index = 0;
  auto append = [&](JoinTopology topology, int n, bool band) {
    for (size_t d = 0; d < config.data_profiles.size(); ++d) {
      for (size_t p = 0; p < config.predicate_mixes.size(); ++p) {
        ScenarioCell cell;
        cell.index = index;
        cell.topology = topology;
        cell.num_relations = n;
        cell.data_profile = static_cast<int>(d);
        cell.predicate_mix = static_cast<int>(p);
        cell.band = band;
        // Per-cell derived seed, decorrelated via the shared splitmix64
        // finalizer so adjacent cells never share an Rng stream prefix.
        cell.seed =
            MixSeed64(config.seed ^ (static_cast<uint64_t>(index) << 20));
        cells.push_back(cell);
        ++index;
      }
    }
  };
  for (JoinTopology topology : config.topologies) {
    for (int n : config.relation_counts) {
      append(topology, n, /*band=*/false);
    }
  }
  for (JoinTopology topology : config.band_topologies) {
    for (int n : config.band_relation_counts) {
      append(topology, n, /*band=*/true);
    }
  }
  return cells;
}

}  // namespace hfq
