// Plumbing shared by the vectorized engine (executor.cc) and the
// tuple-at-a-time reference engine (executor_legacy.cc): column binding,
// predicate siding, and the clamped index-range candidate collection.
// Internal to src/exec — not part of the executor's public API.
#ifndef HFQ_EXEC_EXECUTOR_INTERNAL_H_
#define HFQ_EXEC_EXECUTOR_INTERNAL_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/executor.h"
#include "plan/expr.h"
#include "storage/index.h"
#include "util/check.h"

namespace hfq {
namespace exec_internal {

/// Fetches the base-table column backing a ColumnRef.
const Column* ResolveColumn(const Database& db, const Query& query,
                            const ColumnRef& ref);

/// A ColumnRef resolved against a specific RowIdTable: the table column
/// position plus the backing base-table column. Operators bind each ref
/// once and reuse it across the tuple loop — resolving per tuple costs two
/// string-keyed hash lookups on the hottest path in the executor.
struct BoundColumn {
  int col_pos = -1;
  const Column* column = nullptr;
};

BoundColumn BindColumn(const Database& db, const Query& query,
                       const RowIdTable& t, const ColumnRef& ref);

inline double BoundValue(const BoundColumn& bound, const RowIdTable& t,
                         int64_t tuple) {
  int64_t row = t.row_ids[static_cast<size_t>(bound.col_pos)][
      static_cast<size_t>(tuple)];
  return bound.column->GetNumeric(row);
}

inline int64_t BoundIntValue(const BoundColumn& bound, const RowIdTable& t,
                             int64_t tuple) {
  int64_t row = t.row_ids[static_cast<size_t>(bound.col_pos)][
      static_cast<size_t>(tuple)];
  return bound.column->GetInt(row);
}

/// A join predicate sided against a specific join: which ref belongs to
/// the outer (left child) input and which to the inner.
struct SidedPred {
  ColumnRef outer_ref;
  ColumnRef inner_ref;
};

/// Sides node.join_pred_idxs against node.child(0)'s relation set.
/// `skip_pred_idx` (an index into query.joins, or -1) omits that
/// predicate — used by INLJ to list the predicates the index probe does
/// not already cover.
std::vector<SidedPred> SidePreds(const Query& query, const PlanNode& node,
                                 int skip_pred_idx = -1);

/// floor(d) clamped into int64 range. A plain cast is UB once the floor
/// falls outside [INT64_MIN, INT64_MAX] (e.g. a selection literal of
/// 1e300), so range predicates saturate instead.
inline int64_t ClampedFloorToInt64(double d) {
  const double f = std::floor(d);
  // 2^63 is exactly representable; anything >= it would overflow the cast.
  if (f >= 9223372036854775808.0) return INT64_MAX;
  if (f <= -9223372036854775808.0) return INT64_MIN;
  return static_cast<int64_t>(f);
}

/// Collects an index scan's candidate rows into *candidates. The kLt/kGt
/// range edges are clamped: `v - 1` / `v + 1` at INT64_MIN / INT64_MAX is
/// signed-overflow UB, and those predicates simply match nothing.
Status CollectIndexCandidates(const Table& table, const Query& query,
                              const PlanNode& node,
                              const std::string& table_name,
                              std::vector<int64_t>* candidates);

/// The probe side of an index nested-loop join: the resolved inner-table
/// index plus the probe predicate's refs sided into outer (key gathered
/// per tuple) and inner (the indexed column).
struct InljProbe {
  const TableIndex* index = nullptr;
  ColumnRef outer_key;
  ColumnRef inner_key;
};

/// Resolves the INLJ probe index (preferring the scan's declared index
/// kind, falling back to any index on the key column).
Result<InljProbe> ResolveInljProbe(const Database& db, const Query& query,
                                   const PlanNode& node);

/// A batch of join matches: parallel vectors of (outer tuple, inner
/// tuple) pairs, collected per morsel and materialized in one block
/// append. For INLJ the inner entries are base-table rows.
struct MatchBuffer {
  std::vector<int64_t> outer;
  std::vector<int64_t> inner;
};

/// Flat open-addressing join table: linear probing over power-of-2 slots,
/// one slot per distinct key, duplicate build tuples chained FIFO through
/// a contiguous next-arena. FIFO chains make probe emission order match
/// the reference engine's per-key push_back order exactly. Build reuses
/// the arenas' capacity, so a pooled instance allocates only on growth.
class FlatJoinHashTable {
 public:
  void Build(const std::vector<int64_t>& keys) {
    const size_t n = keys.size();
    next_.assign(n, -1);
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Slot{});
    for (size_t i = 0; i < n; ++i) {
      const int64_t key = keys[i];
      size_t s = Hash(key) & mask_;
      while (slots_[s].head >= 0 && slots_[s].key != key) {
        s = (s + 1) & mask_;
      }
      if (slots_[s].head < 0) {
        slots_[s].key = key;
        slots_[s].head = static_cast<int64_t>(i);
      } else {
        next_[static_cast<size_t>(slots_[s].tail)] = static_cast<int64_t>(i);
      }
      slots_[s].tail = static_cast<int64_t>(i);
    }
  }

  /// First build tuple with `key` (in build order), or -1; chase the
  /// chain with Next().
  int64_t First(int64_t key) const {
    size_t s = Hash(key) & mask_;
    while (slots_[s].head >= 0) {
      if (slots_[s].key == key) return slots_[s].head;
      s = (s + 1) & mask_;
    }
    return -1;
  }

  int64_t Next(int64_t i) const { return next_[static_cast<size_t>(i)]; }

 private:
  struct Slot {
    int64_t key = 0;
    int64_t head = -1;
    int64_t tail = -1;
  };

  static size_t Hash(int64_t k) {
    uint64_t h = static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h ^ (h >> 32));
  }

  size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<int64_t> next_;
};

/// Per-Executor reusable buffers. Fresh megabyte-scale vectors (row-id
/// columns, gathered key vectors, match buffers) every Execute dominate
/// the vectorized engine's runtime — growth copies plus first-touch page
/// faults cost several times the actual probe work — so operators take
/// vectors from these freelists and recycle them when an intermediate
/// dies. Steady state allocates nothing. Serial use only: morsel workers
/// never touch the pools; their buffers are acquired up front.
struct ExecScratch {
  std::vector<std::vector<int64_t>> int_pool;
  std::vector<std::vector<double>> dbl_pool;

  std::vector<int64_t> TakeInts() {
    if (int_pool.empty()) return {};
    std::vector<int64_t> v = std::move(int_pool.back());
    int_pool.pop_back();
    v.clear();
    return v;
  }
  std::vector<double> TakeDoubles() {
    if (dbl_pool.empty()) return {};
    std::vector<double> v = std::move(dbl_pool.back());
    dbl_pool.pop_back();
    v.clear();
    return v;
  }
  void Recycle(std::vector<int64_t>&& v) {
    if (v.capacity() > 0) int_pool.push_back(std::move(v));
  }
  void Recycle(std::vector<double>&& v) {
    if (v.capacity() > 0) dbl_pool.push_back(std::move(v));
  }
  void Recycle(RowIdTable&& t) {
    for (auto& col : t.row_ids) Recycle(std::move(col));
    t.row_ids.clear();
  }
  void Recycle(MatchBuffer&& buf) {
    Recycle(std::move(buf.outer));
    Recycle(std::move(buf.inner));
  }

  /// The join hash table, rebuilt (capacity warm) per hash join.
  FlatJoinHashTable join_ht;

  /// Aggregation arenas (see Executor::ExecAggregate).
  std::vector<int64_t> agg_slot_group;
  std::vector<uint64_t> agg_group_hash;
  std::vector<double> agg_group_keys;
  std::vector<double> agg_accum;
  std::vector<int64_t> agg_counts;
  std::vector<double> agg_probe;
};

}  // namespace exec_internal
}  // namespace hfq

#endif  // HFQ_EXEC_EXECUTOR_INTERNAL_H_
