// ReJOIN end-to-end: the policy-gradient join-order enumerator of the
// paper's case study. Couples JoinOrderEnv with PolicyGradientAgent,
// batching episodes into policy updates, and exposes greedy inference with
// planning-time measurement (for the Figure 3c comparison).
#ifndef HFQ_REJOIN_REJOIN_H_
#define HFQ_REJOIN_REJOIN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rejoin/join_env.h"
#include "rl/experience_pool.h"
#include "rl/policy_gradient.h"
#include "rl/teacher_loop.h"
#include "search/plan_search.h"
#include "util/thread_pool.h"

namespace hfq {

/// Trainer configuration.
struct RejoinConfig {
  RejoinConfig() {}
  PolicyGradientConfig pg;
  /// Episodes per policy update (ReJOIN updated periodically).
  int episodes_per_update = 8;
  /// Rollout-collection parallelism for Train. 1 (default) collects
  /// serially on the calling thread; N > 1 collects each update batch
  /// across N workers against the frozen policy (requires SetWorkerEnvs
  /// with N-1 extra independent environments). The update cadence is
  /// identical either way: the policy only ever changes at batch
  /// boundaries, so 1 worker reproduces the serial trajectories
  /// bit-for-bit, and N workers are deterministic for a fixed seed and N.
  int num_rollout_workers = 1;
};

/// Per-episode diagnostics.
struct RejoinEpisodeStats {
  std::string query_name;
  double reward = 0.0;
  int steps = 0;
};

/// Runs ReJOIN training and inference over a JoinOrderEnv.
class RejoinTrainer {
 public:
  /// `env` must outlive the trainer.
  RejoinTrainer(JoinOrderEnv* env, RejoinConfig config, uint64_t seed);

  /// Runs one episode on `query`. When `train` is true, actions are
  /// sampled and the episode joins the update batch; otherwise actions are
  /// greedy and nothing is recorded.
  RejoinEpisodeStats RunEpisode(const Query& query, bool train);

  /// Trains over the workload round-robin for `episodes` episodes,
  /// invoking `on_episode` (if set) after each. Any trailing partial batch
  /// of episodes is flushed into a final policy update before returning.
  /// With config.num_rollout_workers > 1, each update batch is collected in
  /// parallel (worker w samples from its own rng stream: worker 0 shares
  /// the agent's stream, worker w >= 1 is seeded trainer_seed + w);
  /// `on_episode` still fires in episode order, after the batch is
  /// collected — callbacks that mutate the agent therefore take effect at
  /// batch granularity.
  void Train(const std::vector<Query>& workload, int episodes,
             const std::function<void(int, const RejoinEpisodeStats&)>&
                 on_episode = nullptr);

  /// Registers the extra environments parallel Train collects on: worker 0
  /// uses the constructor env, worker w >= 1 uses envs[w - 1]. Each must be
  /// an independent JoinOrderEnv (own instance; a thread-safe reward fn)
  /// with the same dimensions as the primary env, and must outlive the
  /// trainer. Required before Train when num_rollout_workers > 1.
  void SetWorkerEnvs(std::vector<JoinOrderEnv*> envs);

  /// Test/diagnostic hook: receives every training episode's trajectory
  /// (global episode index, episode) in order during Train.
  void set_trajectory_sink(
      std::function<void(int, const Episode&)> sink) {
    trajectory_sink_ = std::move(sink);
  }

  /// Applies a policy update from any buffered episodes that have not yet
  /// reached `episodes_per_update` (no-op when none are buffered). Called
  /// by Train; useful for callers driving RunEpisode directly.
  void FlushPendingEpisodes();

  /// Episodes buffered toward the next policy update.
  size_t pending_episodes() const { return pending_.size(); }

  /// Greedy inference: returns the join tree the trained policy picks.
  /// If `planning_ms_out` is non-null it receives the pure inference time
  /// (featurization + network forward passes), the Figure 3c metric.
  /// Equivalent to PlanWithSearch with a default-greedy SearchConfig.
  std::unique_ptr<JoinTreeNode> Plan(const Query& query,
                                     double* planning_ms_out = nullptr);

  /// Plan-time search over the frozen policy (src/search): greedy,
  /// best-of-K sampled rollouts, or value-guided beam, per `search`. The
  /// returned tree never scores worse than Plan()'s under the env reward
  /// (the greedy rollout is always a candidate). `planning_ms_out`
  /// receives the full search charge — every rollout and expansion, not
  /// just the winning one (the honest Figure 3c accounting for searched
  /// inference). Deterministic per (model, query, search config); does
  /// not consume the trainer's sampling streams.
  std::unique_ptr<JoinTreeNode> PlanWithSearch(
      const Query& query, const SearchConfig& search,
      double* planning_ms_out = nullptr, SearchResult* result_out = nullptr);

  /// Search-as-teacher refinement (rl/teacher_loop.h) of the trained
  /// policy: per iteration, the frozen policy plans every workload query
  /// with `teacher_search`, discovered join orders accumulate in `pool`
  /// (deduplicated; a caller-owned pool persists across calls — pass
  /// nullptr for a call-local one), and the agent behaviour-clones the
  /// cheapest known plan per query. Weights only survive iterations that
  /// do not worsen greedy inference, so the returned per-iteration greedy
  /// mean cost is non-increasing. Serial and deterministic at any
  /// num_rollout_workers; does not consume the trainer's sampling streams.
  Result<std::vector<TeacherIterationStats>> RefineWithTeacher(
      const std::vector<Query>& workload, const TeacherConfig& teacher,
      const SearchConfig& teacher_search, ExperiencePool* pool = nullptr);

  PolicyGradientAgent& agent() { return agent_; }

 private:
  /// Buffers one collected episode: pending_ push, policy update at the
  /// batch boundary, then the per-episode callbacks — the serial sequence.
  void AbsorbEpisode(int global_episode, Episode episode,
                     const RejoinEpisodeStats& stats,
                     const std::function<void(int, const RejoinEpisodeStats&)>&
                         on_episode);

  JoinOrderEnv* env_;
  RejoinConfig config_;
  PolicyGradientAgent agent_;
  uint64_t seed_;
  std::vector<Episode> pending_;
  std::vector<JoinOrderEnv*> worker_envs_;
  /// Sampling streams for workers 1..N-1 (worker 0 uses the agent's rng);
  /// created on first parallel Train and persisted across rounds.
  std::vector<std::unique_ptr<Rng>> worker_rngs_;
  std::unique_ptr<ThreadPool> pool_;
  /// Reusable inference scratch for Plan/PlanWithSearch: forward buffers
  /// plus arena/env-pool search state, cleared (not freed) between
  /// queries so steady-state planning allocates nothing per call.
  MlpWorkspace plan_ws_;
  SearchScratch plan_scratch_;
  std::function<void(int, const Episode&)> trajectory_sink_;
};

}  // namespace hfq

#endif  // HFQ_REJOIN_REJOIN_H_
