// The machine-readable evaluation report: per-cell and aggregate regret
// statistics, serialized as JSON ("hfq-eval-v1" schema, documented in the
// README's Evaluation harness section). This is the artifact that seeds
// the BENCH_*.json trajectory and that the golden regression gates in
// tests/eval_test.cc consume.
#ifndef HFQ_EVAL_REPORT_H_
#define HFQ_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/regret.h"
#include "eval/scenario.h"
#include "util/status.h"

namespace hfq {

/// Everything measured for one matrix cell.
struct CellResult {
  ScenarioCell cell;
  /// Raw per-query rows for search mode 0, in generation order.
  std::vector<HandsFreeOptimizer::QueryEvaluation> rows;
  PlannerStats learned;  ///< The learned planner under search mode 0.
  /// Whether the exhaustive-DP baseline ran for this cell. False on the
  /// DP-infeasible band, where `dp` is default-initialized and the cell
  /// is scored against GEQO.
  bool has_dp = true;
  PlannerStats dp;
  PlannerStats geqo;
  /// Learned-planner results under each *additional* search mode
  /// (config.search_modes[1..]; mode 0 is `rows`/`learned` above).
  /// more_rows[m] copies the DP/GEQO columns of `rows` — only the
  /// learned_* fields differ.
  std::vector<std::vector<HandsFreeOptimizer::QueryEvaluation>> more_rows;
  std::vector<PlannerStats> more_search;
};

/// One full harness run.
struct EvalReport {
  EvalConfig config;
  std::vector<CellResult> cells;
  /// Aggregates over every query of every cell (cell order).
  PlannerStats agg_learned;
  PlannerStats agg_dp;
  PlannerStats agg_geqo;
  /// Aggregates for the additional search modes (parallel to
  /// config.search_modes[1..]).
  std::vector<PlannerStats> agg_more_search;
  /// Wall-clock (timings section only).
  double train_ms = 0.0;
  double total_ms = 0.0;
};

/// Serializes with a stable field order and %.17g doubles, so two runs
/// with identical stats produce identical bytes. `include_timings` adds
/// wall-clock sections (training/planning times) — leave it off when the
/// bytes must be deterministic. Execution knobs that cannot change the
/// stats (num_workers, include_timings itself) are deliberately not
/// echoed. Schema: a single default-greedy search sweep emits the
/// historic "hfq-eval-v1" bytes exactly; any other sweep emits
/// "hfq-eval-v2", which adds `config.search_modes` plus per-cell and
/// aggregate "learned:<mode>" planner sections. A run with a large-join
/// tier (some cell above dp_max_relations) emits "hfq-eval-v3", which
/// additionally echoes dp_max_relations and the band axes in the config
/// section, names each cell's baselines (`"baselines":["dp","geqo"]` or
/// `["geqo"]`), omits the "dp" planner section from DP-free cells, and
/// restricts the aggregate "dp" section to the rows where DP ran.
std::string ReportToJson(const EvalReport& report, bool include_timings);

/// ReportToJson to a file.
Status WriteReportJson(const std::string& path, const EvalReport& report,
                       bool include_timings);

}  // namespace hfq

#endif  // HFQ_EVAL_REPORT_H_
