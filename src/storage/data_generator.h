// Materializes synthetic data for a catalog. The generator realizes each
// column's declared distribution (serial ids, uniform/Zipf categoricals,
// skewed foreign keys, injected correlations). Determinism: identical
// (catalog, seed) inputs produce identical databases.
#ifndef HFQ_STORAGE_DATA_GENERATOR_H_
#define HFQ_STORAGE_DATA_GENERATOR_H_

#include <memory>

#include "catalog/catalog.h"
#include "storage/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace hfq {

/// Generates a database for `catalog`. Builds all catalog indexes.
class DataGenerator {
 public:
  explicit DataGenerator(uint64_t seed) : seed_(seed) {}

  /// Generates all tables and their indexes. The returned Database keeps a
  /// pointer to `catalog`, which must outlive it.
  Result<std::unique_ptr<Database>> Generate(const Catalog& catalog);

 private:
  uint64_t seed_;
};

}  // namespace hfq

#endif  // HFQ_STORAGE_DATA_GENERATOR_H_
