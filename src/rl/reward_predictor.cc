#include "rl/reward_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace hfq {

uint64_t OutcomeExampleKey(const OutcomeExample& example) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis.
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  uint64_t bits = 0;
  for (double d : example.state) {
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  mix(static_cast<uint64_t>(example.action));
  std::memcpy(&bits, &example.target, sizeof(bits));
  mix(bits);
  mix(example.from_expert ? 1u : 0u);
  return h;
}

RewardPredictor::RewardPredictor(int state_dim, int action_dim,
                                 RewardPredictorConfig config, uint64_t seed)
    : state_dim_(state_dim),
      action_dim_(action_dim),
      config_(config),
      opt_(config.lr),
      buffer_(config.replay_capacity),
      rng_(seed),
      eval_rng_(MixSeed64(seed ^ 0xE7A1D057ull)) {
  HFQ_CHECK(state_dim > 0 && action_dim > 0);
  MlpConfig mc;
  mc.input_dim = state_dim;
  mc.hidden_dims = config_.hidden_dims;
  mc.output_dim = action_dim;
  net_ = Mlp(mc, &rng_);
}

std::vector<double> RewardPredictor::PredictAll(
    const std::vector<double>& state) {
  HFQ_CHECK(static_cast<int>(state.size()) == state_dim_);
  Matrix out = net_.Forward(Matrix::RowVector(state));
  std::vector<double> preds(static_cast<size_t>(action_dim_));
  for (int a = 0; a < action_dim_; ++a) {
    preds[static_cast<size_t>(a)] = out.At(0, a);
  }
  return preds;
}

std::vector<double> RewardPredictor::PredictAll(
    const std::vector<double>& state, MlpWorkspace* workspace) const {
  HFQ_CHECK(static_cast<int>(state.size()) == state_dim_);
  const Matrix& out = net_.ForwardInto(Matrix::RowVector(state), workspace);
  std::vector<double> preds(static_cast<size_t>(action_dim_));
  for (int a = 0; a < action_dim_; ++a) {
    preds[static_cast<size_t>(a)] = out.At(0, a);
  }
  return preds;
}

std::vector<std::vector<double>> RewardPredictor::PredictAllBatch(
    const std::vector<const std::vector<double>*>& states,
    MlpWorkspace* workspace) const {
  if (states.empty()) return {};
  const int64_t n = static_cast<int64_t>(states.size());
  Matrix inputs = StackRows(n, state_dim_,
                            [&states](int64_t i) -> const std::vector<double>& {
                              return *states[static_cast<size_t>(i)];
                            });
  const Matrix& out = net_.ForwardBatchInto(inputs, workspace);
  std::vector<std::vector<double>> preds(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double>& row = preds[static_cast<size_t>(i)];
    row.resize(static_cast<size_t>(action_dim_));
    for (int a = 0; a < action_dim_; ++a) row[static_cast<size_t>(a)] = out.At(i, a);
  }
  return preds;
}

double RewardPredictor::Predict(const std::vector<double>& state,
                                int action) {
  return PredictAll(state)[static_cast<size_t>(action)];
}

int RewardPredictor::SelectAction(const std::vector<double>& state,
                                  const std::vector<bool>& mask,
                                  double epsilon) {
  return SelectAction(state, mask, epsilon, &rng_, &scratch_ws_);
}

int RewardPredictor::SelectAction(const std::vector<double>& state,
                                  const std::vector<bool>& mask,
                                  double epsilon, Rng* rng,
                                  MlpWorkspace* workspace) const {
  std::vector<int> valid;
  for (int a = 0; a < action_dim_; ++a) {
    if (mask[static_cast<size_t>(a)]) valid.push_back(a);
  }
  HFQ_CHECK_MSG(!valid.empty(), "no valid action");
  if (epsilon > 0.0) {
    HFQ_CHECK(rng != nullptr);
    if (rng->Bernoulli(epsilon)) return rng->Choice(valid);
  }
  std::vector<double> preds = PredictAll(state, workspace);
  // Strict < : ties resolve to the lowest valid action index, never to
  // Rng state (the rng is only touched by the epsilon branch above), so
  // epsilon-0 inference on a frozen predictor is fully deterministic.
  int best = valid[0];
  for (int a : valid) {
    if (preds[static_cast<size_t>(a)] < preds[static_cast<size_t>(best)]) {
      best = a;
    }
  }
  return best;
}

void RewardPredictor::AddExample(OutcomeExample example) {
  HFQ_CHECK(static_cast<int>(example.state.size()) == state_dim_);
  HFQ_CHECK(example.action >= 0 && example.action < action_dim_);
  buffer_.Add(std::move(example));
}

bool RewardPredictor::AddExampleUnique(OutcomeExample example) {
  HFQ_CHECK(static_cast<int>(example.state.size()) == state_dim_);
  HFQ_CHECK(example.action >= 0 && example.action < action_dim_);
  const uint64_t key = OutcomeExampleKey(example);
  return buffer_.AddUnique(std::move(example), key);
}

double RewardPredictor::BatchLossAndGradients(
    const std::vector<const OutcomeExample*>& batch) {
  HFQ_CHECK(!batch.empty());
  const int64_t n = static_cast<int64_t>(batch.size());
  const double inv_n = 1.0 / static_cast<double>(n);
  Matrix states =
      StackRows(n, state_dim_,
                [&batch](int64_t i) -> const std::vector<double>& {
                  return batch[static_cast<size_t>(i)]->state;
                });
  net_.ZeroGrads();
  // One forward per minibatch; the single Backward below reuses its cache.
  Matrix out = net_.Forward(states);
  double total_loss = 0.0;
  Matrix grad(n, action_dim_);
  for (int64_t i = 0; i < n; ++i) {
    const OutcomeExample* ex = batch[static_cast<size_t>(i)];
    // Regression loss on the taken action's output.
    double pred = out.At(i, ex->action);
    double diff = pred - ex->target;
    double g;
    if (std::abs(diff) <= config_.huber_delta) {
      total_loss += 0.5 * diff * diff;
      g = diff;
    } else {
      total_loss += config_.huber_delta * (std::abs(diff) -
                                           0.5 * config_.huber_delta);
      g = diff > 0 ? config_.huber_delta : -config_.huber_delta;
    }
    grad.At(i, ex->action) = g * inv_n;
    // Large-margin demonstration loss: every non-expert action must
    // predict at least `margin` worse (higher) than the expert outcome.
    // Loss and gradient carry the same margin_weight / action_dim
    // normalization (plus the 1/n batch mean applied to both terms), so
    // the reported loss is exactly the objective the gradient descends.
    if (ex->from_expert && config_.margin_weight > 0.0) {
      const double floor = ex->target + config_.demonstration_margin;
      const double weight =
          config_.margin_weight / static_cast<double>(action_dim_);
      for (int a = 0; a < action_dim_; ++a) {
        if (a == ex->action) continue;
        double violation = floor - out.At(i, a);
        if (violation > 0.0) {
          total_loss += weight * violation;
          grad.At(i, a) -= weight * inv_n;  // Push the prediction up.
        }
      }
    }
  }
  net_.Backward(grad);
  return total_loss * inv_n;
}

double RewardPredictor::TrainSteps(int steps) {
  if (buffer_.empty()) return 0.0;
  double loss_sum = 0.0;
  int batches = 0;
  for (int step = 0; step < steps; ++step) {
    auto batch = buffer_.Sample(&rng_, static_cast<size_t>(config_.batch_size));
    loss_sum += BatchLossAndGradients(batch);
    ++batches;
    ClipGradientsByGlobalNorm(net_.Grads(), config_.max_grad_norm);
    opt_.Step(net_.Params(), net_.Grads());
  }
  return batches > 0 ? loss_sum / batches : 0.0;
}

Status RewardPredictor::Save(std::ostream& out) { return net_.Save(out); }

Status RewardPredictor::LoadWeights(std::istream& in) {
  HFQ_ASSIGN_OR_RETURN(Mlp net, Mlp::Load(in));
  if (net.config().input_dim != state_dim_ ||
      net.config().output_dim != action_dim_) {
    return Status::InvalidArgument(
        "loaded predictor network does not match this predictor's "
        "dimensions");
  }
  net_ = std::move(net);
  return Status::OK();
}

double RewardPredictor::EvaluateError(size_t sample_size) {
  if (buffer_.empty()) return 0.0;
  // Evaluation draws from its own derived stream: a diagnostic call must
  // never move rng_, or training trajectories would depend on whether and
  // when the caller evaluated.
  auto batch = buffer_.Sample(&eval_rng_, sample_size);
  double total = 0.0;
  for (const OutcomeExample* ex : batch) {
    total += std::abs(Predict(ex->state, ex->action) - ex->target);
  }
  return total / static_cast<double>(batch.size());
}

}  // namespace hfq
