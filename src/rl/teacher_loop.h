// The search-as-teacher refinement loop (Balsa-style, and the "learning
// from the optimizer's own search" idea of the paper's Section 5): each
// iteration freezes the current policy, runs a plan-time search over the
// training workload to discover cheap plans, folds every discovery into a
// cross-iteration deduplicated ExperiencePool, and trains the student on
// the cheapest known plan per query — as behaviour-cloning demonstrations
// and value/reward regression targets. Greedy inference is re-evaluated
// after every iteration and, by default, weights only survive an iteration
// that did not make greedy worse, so the reported greedy mean cost is
// non-increasing by construction.
//
// The loop is search-strategy agnostic: the teacher search arrives as an
// injected callable (TeacherSearchFn), so this module depends only on the
// rl/ layer while src/search (which depends on rl/) supplies the actual
// searchers through src/core and src/rejoin.
#ifndef HFQ_RL_TEACHER_LOOP_H_
#define HFQ_RL_TEACHER_LOOP_H_

#include <functional>
#include <iosfwd>
#include <vector>

#include "rl/env.h"
#include "rl/experience_pool.h"
#include "rl/policy_gradient.h"
#include "rl/reward_predictor.h"
#include "rl/search_context.h"
#include "rl/trajectory.h"
#include "util/status.h"

namespace hfq {

/// Knobs of one RunTeacherLoop call.
struct TeacherConfig {
  TeacherConfig() {}
  /// Number of freeze-search-train iterations; <= 0 disables the loop.
  int iterations = 0;
  /// Student Learn() passes over the demonstration set per iteration.
  int learn_passes = 4;
  /// For predictor students: TrainSteps minibatches per Learn() pass.
  int predictor_steps = 32;
  /// Keep the best-greedy weights: when an iteration ends with a worse
  /// greedy mean cost than the best seen, restore the snapshot instead of
  /// keeping the regression (makes the per-iteration greedy mean cost
  /// non-increasing by construction).
  bool keep_best_weights = true;
};

/// One replayed teacher demonstration: the cheapest known plan of one
/// query, re-executed on the env so the student sees real transitions.
struct TeacherDemo {
  Episode episode;
  uint64_t fingerprint = 0;
  /// The env's FinalCost of the replayed plan.
  double final_cost = 0.0;
  /// Regression target for value/reward heads (see TeacherLoopTask).
  double target = 0.0;
};

/// The trainee side of the loop: anything that can learn from replayed
/// demonstrations and snapshot/restore its weights.
class TeacherStudent {
 public:
  virtual ~TeacherStudent() = default;

  /// One training pass over the demonstration set; returns a diagnostic
  /// loss. Called learn_passes times per iteration.
  virtual double Learn(const std::vector<TeacherDemo>& demos) = 0;

  /// Weight-only snapshot/restore used by keep_best_weights rollback.
  /// (Optimizer moments are not restored; greedy evaluation depends only
  /// on weights, so rollback still pins the reported metric.)
  virtual Status SaveWeights(std::ostream& out) = 0;
  virtual Status LoadWeights(std::istream& in) = 0;
};

/// TeacherStudent over a PolicyGradientAgent: demonstrations become
/// behaviour-cloning (state, action) pairs for the policy net and
/// return-to-go regression targets for the value head.
class AgentTeacherStudent : public TeacherStudent {
 public:
  /// `agent` must outlive this object.
  explicit AgentTeacherStudent(PolicyGradientAgent* agent);

  double Learn(const std::vector<TeacherDemo>& demos) override;
  Status SaveWeights(std::ostream& out) override;
  Status LoadWeights(std::istream& in) override;

 private:
  PolicyGradientAgent* agent_;
};

/// TeacherStudent over a RewardPredictor: each demonstration transition
/// becomes an expert OutcomeExample with the demo's target as the outcome,
/// inserted via AddExampleUnique so re-offered demonstrations never
/// overweight replay sampling.
class PredictorTeacherStudent : public TeacherStudent {
 public:
  /// `predictor` must outlive this object.
  PredictorTeacherStudent(RewardPredictor* predictor, int train_steps);

  double Learn(const std::vector<TeacherDemo>& demos) override;
  Status SaveWeights(std::ostream& out) override;
  Status LoadWeights(std::istream& in) override;

 private:
  RewardPredictor* predictor_;
  int train_steps_;
};

/// What one teacher search of one query discovered.
struct TeacherSearchOutcome {
  std::vector<int> actions;
  double cost = 0.0;
};

/// Runs a plan-time search of the env's current query against the frozen
/// policy and returns the winning action sequence plus its FinalCost.
using TeacherSearchFn = std::function<Result<TeacherSearchOutcome>(SearchEnv*)>;

/// Everything RunTeacherLoop operates on. All raw pointers are borrowed and
/// must outlive the call.
struct TeacherLoopTask {
  /// The training env; the loop drives it single-threaded.
  SearchEnv* env = nullptr;
  size_t num_queries = 0;
  /// Points `env` at workload query i and returns that query's structural
  /// fingerprint (the experience-pool key).
  std::function<uint64_t(size_t)> select_query;
  TeacherSearchFn search;
  /// Read-only view of the student's current weights, used for the
  /// per-iteration greedy evaluation. Must stay coherent with `student`
  /// (i.e. wrap the same underlying model).
  const FrozenPolicy* policy = nullptr;
  TeacherStudent* student = nullptr;
  /// Cross-iteration plan store; the caller owns it so it can persist and
  /// reuse discoveries across RunTeacherLoop calls.
  ExperiencePool* pool = nullptr;
  /// Optional regression target for demo (query i, replayed episode,
  /// final cost) — called immediately after the winning plan is replayed,
  /// while `env` is Done() at that plan, so implementations may inspect
  /// env outputs (e.g. the final physical plan). Defaults to the negated
  /// episode return, which matches SearchEnv::FinalCost conventions.
  std::function<double(size_t, const Episode&, double)> demo_target;
};

/// Per-iteration diagnostics of the loop.
struct TeacherIterationStats {
  int iteration = 0;
  /// Mean teacher-search FinalCost over the workload this iteration.
  double teacher_mean_cost = 0.0;
  /// Mean greedy FinalCost over the workload *after* this iteration's
  /// training (post-rollback when keep_best_weights kicked in) — the
  /// loop's headline metric, non-increasing across iterations.
  double greedy_mean_cost = 0.0;
  /// Plans this iteration's searches added to the pool (not seen before).
  int new_plans = 0;
  /// Demonstrations (best plan per query) the student trained on.
  int demos = 0;
  /// Diagnostic loss of the last Learn() pass.
  double student_loss = 0.0;
  /// Whether keep_best_weights restored the previous best snapshot.
  bool rolled_back = false;
};

/// Runs `config.iterations` freeze-search-train iterations; returns one
/// stats row per iteration (empty when iterations <= 0). Fully serial and
/// deterministic: same task state + config in, bit-identical weights and
/// stats out, independent of any rollout-worker configuration.
Result<std::vector<TeacherIterationStats>> RunTeacherLoop(
    const TeacherLoopTask& task, const TeacherConfig& config);

}  // namespace hfq

#endif  // HFQ_RL_TEACHER_LOOP_H_
