#include "storage/index.h"

#include <algorithm>

#include "storage/column.h"
#include "util/check.h"

namespace hfq {

SortedIndex::SortedIndex(IndexDef def, const Column& column)
    : TableIndex(std::move(def)) {
  HFQ_CHECK(column.type() == ColumnType::kInt64);
  entries_.reserve(static_cast<size_t>(column.size()));
  for (int64_t row = 0; row < column.size(); ++row) {
    entries_.emplace_back(column.GetInt(row), row);
  }
  std::sort(entries_.begin(), entries_.end());
}

void SortedIndex::LookupEqual(int64_t key, std::vector<int64_t>* rows) const {
  auto lo = std::lower_bound(entries_.begin(), entries_.end(),
                             std::make_pair(key, INT64_MIN));
  for (auto it = lo; it != entries_.end() && it->first == key; ++it) {
    rows->push_back(it->second);
  }
}

void SortedIndex::LookupRange(int64_t lo, int64_t hi,
                              std::vector<int64_t>* rows) const {
  auto begin = std::lower_bound(entries_.begin(), entries_.end(),
                                std::make_pair(lo, INT64_MIN));
  for (auto it = begin; it != entries_.end() && it->first <= hi; ++it) {
    rows->push_back(it->second);
  }
}

HashIndex::HashIndex(IndexDef def, const Column& column)
    : TableIndex(std::move(def)) {
  HFQ_CHECK(column.type() == ColumnType::kInt64);
  map_.reserve(static_cast<size_t>(column.size()));
  for (int64_t row = 0; row < column.size(); ++row) {
    map_[column.GetInt(row)].push_back(row);
    ++count_;
  }
}

void HashIndex::LookupEqual(int64_t key, std::vector<int64_t>* rows) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  rows->insert(rows->end(), it->second.begin(), it->second.end());
}

}  // namespace hfq
