#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hfq {

CostModel::CostModel(const Catalog* catalog, CardinalitySource* cards,
                     CostParams params)
    : catalog_(catalog), cards_(cards), params_(params) {
  HFQ_CHECK(catalog != nullptr && cards != nullptr);
}

double CostModel::TablePages(const Query& query, int rel) const {
  const auto& rel_ref = query.relations[static_cast<size_t>(rel)];
  auto table = catalog_->GetTable(rel_ref.table);
  HFQ_CHECK_MSG(table.ok(), "cost model: unknown table");
  double bytes = static_cast<double>((*table)->num_rows) *
                 static_cast<double>(TupleWidthBytes(**table));
  return std::max(1.0, std::ceil(bytes / params_.page_size_bytes));
}

double CostModel::ScanCost(const Query& query, const PlanNode& node,
                           double* out_rows) const {
  const int rel = node.rel_idx;
  const double base_rows = cards_->BaseRows(query, rel);
  const double pages = TablePages(query, rel);
  // Output rows after *all* selections on this relation present at the node.
  std::vector<int> all_sels = node.filter_sel_idxs;
  if (node.index_sel_idx >= 0) all_sels.push_back(node.index_sel_idx);
  *out_rows = cards_->RowsWithSelections(query, rel, all_sels);

  if (node.op == PhysicalOp::kSeqScan) {
    double cpu = params_.cpu_tuple_cost * base_rows +
                 params_.cpu_operator_cost * base_rows *
                     static_cast<double>(node.filter_sel_idxs.size());
    return params_.seq_page_cost * pages + cpu;
  }

  HFQ_CHECK(node.op == PhysicalOp::kIndexScan);
  // Rows matched by the index probe itself.
  double matched = node.index_sel_idx >= 0
                       ? cards_->RowsWithSelections(query, rel,
                                                    {node.index_sel_idx})
                       : base_rows;
  double descend =
      node.index_kind == IndexKind::kBTree
          ? params_.cpu_operator_cost *
                std::max(1.0, std::log2(std::max(2.0, base_rows)))
          : params_.cpu_operator_cost * 2.0;
  // Heap fetches: one random page per matched tuple, capped at table pages
  // (clustered-access bound), plus index/residual cpu.
  double heap = params_.random_page_cost * std::min(matched, pages);
  double cpu = params_.cpu_index_tuple_cost * matched +
               params_.cpu_tuple_cost * matched +
               params_.cpu_operator_cost * matched *
                   static_cast<double>(node.filter_sel_idxs.size());
  return descend + heap + cpu;
}

double CostModel::JoinCost(const Query& query, PhysicalOp op,
                           double outer_rows, double outer_cost,
                           double inner_rows, double inner_cost,
                           double output_rows,
                           bool inner_is_indexable) const {
  (void)query;
  const auto& p = params_;
  double cost = outer_cost + inner_cost;
  switch (op) {
    case PhysicalOp::kNestedLoopJoin: {
      // Inner is materialized once, then rescanned per outer row.
      cost += p.cpu_tuple_cost * inner_rows;  // materialize
      cost += p.cpu_operator_cost * outer_rows * std::max(1.0, inner_rows);
      break;
    }
    case PhysicalOp::kIndexNestedLoopJoin: {
      HFQ_CHECK(inner_is_indexable);
      // Probing replaces the inner's own scan cost with per-probe lookups:
      // the inner_cost here should be the *index path* cost, so we charge
      // descend+fetch per outer row. Approximated: log2 descend per probe
      // plus a random page per matched row.
      double per_probe_descend =
          p.cpu_operator_cost * std::max(1.0, std::log2(std::max(
                                                   2.0, inner_rows)));
      cost = outer_cost;  // inner subtree is not scanned wholesale
      cost += outer_rows * per_probe_descend;
      cost += output_rows * (p.random_page_cost + p.cpu_index_tuple_cost);
      break;
    }
    case PhysicalOp::kHashJoin: {
      double build = inner_rows * (p.cpu_operator_cost * 1.5 + p.cpu_tuple_cost);
      double probe = outer_rows * p.cpu_operator_cost * 1.5;
      if (inner_rows > p.work_mem_tuples) {
        build *= p.spill_factor;
        probe *= p.spill_factor;
      }
      cost += build + probe;
      break;
    }
    case PhysicalOp::kMergeJoin: {
      auto sort_cost = [&p](double rows) {
        double r = std::max(2.0, rows);
        double c = 2.0 * p.cpu_operator_cost * r * std::log2(r);
        if (r > p.work_mem_tuples) c *= p.spill_factor;
        return c;
      };
      cost += sort_cost(outer_rows) + sort_cost(inner_rows);
      cost += p.cpu_operator_cost * (outer_rows + inner_rows);
      break;
    }
    default:
      HFQ_CHECK_MSG(false, "JoinCost called with non-join op");
  }
  cost += p.cpu_tuple_cost * output_rows;
  return cost;
}

double CostModel::Annotate(const Query& query, PlanNode* root) {
  HFQ_CHECK(root != nullptr);
  if (root->IsScan()) {
    double rows = 0.0;
    root->est_cost = ScanCost(query, *root, &rows);
    root->est_rows = rows;
    return root->est_cost;
  }
  if (root->IsJoin()) {
    HFQ_CHECK(root->children.size() == 2);
    PlanNode* outer = root->mutable_child(0);
    PlanNode* inner = root->mutable_child(1);
    Annotate(query, outer);
    Annotate(query, inner);
    root->est_rows = cards_->Rows(query, root->rels);
    bool indexable = root->op == PhysicalOp::kIndexNestedLoopJoin;
    root->est_cost =
        JoinCost(query, root->op, outer->est_rows, outer->est_cost,
                 inner->est_rows, inner->est_cost, root->est_rows, indexable);
    return root->est_cost;
  }
  HFQ_CHECK(root->IsAggregate());
  HFQ_CHECK(root->children.size() == 1);
  Annotate(query, root->mutable_child(0));
  return AnnotateAggregateTop(query, root);
}

double CostModel::AnnotateAggregateTop(const Query& query, PlanNode* root) {
  HFQ_CHECK(root->IsAggregate());
  HFQ_CHECK(root->children.size() == 1);
  PlanNode* input = root->mutable_child(0);
  const auto& p = params_;
  double in_rows = input->est_rows;
  double groups = cards_->GroupRows(query);
  double agg_ops = std::max<size_t>(1, query.aggregates.size());
  double cost = input->est_cost;
  if (root->op == PhysicalOp::kHashAggregate) {
    cost += in_rows * p.cpu_operator_cost * (1.0 + agg_ops);
    if (groups > p.work_mem_tuples) cost *= p.spill_factor;
  } else {
    double r = std::max(2.0, in_rows);
    double sort = 2.0 * p.cpu_operator_cost * r * std::log2(r);
    if (r > p.work_mem_tuples) sort *= p.spill_factor;
    cost += sort + in_rows * p.cpu_operator_cost * agg_ops;
  }
  cost += groups * p.cpu_tuple_cost;
  root->est_rows = groups;
  root->est_cost = cost;
  return cost;
}

}  // namespace hfq
