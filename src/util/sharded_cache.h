// Sharded, generation-stamped lookup cache — the primitive behind the
// serving layer's fingerprint-keyed plan cache. Three properties matter
// there and are built in here:
//
//   * Sharding: the 64-bit key picks one of N independently locked
//     shards, so concurrent serving threads rarely contend on one mutex.
//   * Aliasing guard: a 64-bit fingerprint is not an identity — two
//     structurally different queries can collide. Every entry therefore
//     stores an exact identity string (for queries: the reconstructed
//     SQL, which is name-independent) and a Lookup whose identity does
//     not match byte-for-byte is a miss, mirroring the estimator/oracle
//     memo guard. A colliding Insert overwrites, so at most one identity
//     ever occupies a key.
//   * Generation stamping: entries record the policy generation that
//     produced the value; a Lookup from a newer generation treats the
//     entry as stale (a miss), which is how a published policy swap
//     invalidates the whole cache lazily, without a stop-the-world sweep.
#ifndef HFQ_UTIL_SHARDED_CACHE_H_
#define HFQ_UTIL_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hfq {

/// Aggregate counters of one cache instance (monotonic, approximate
/// ordering under concurrency but exact totals).
struct ShardedCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< Key absent.
  uint64_t stale_misses = 0;    ///< Key present, older policy generation.
  uint64_t alias_rejects = 0;   ///< Key present, identity mismatch.
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

/// Fixed-shard-count cache from (uint64 key, identity string, generation)
/// to V. V must be copyable (the serving layer stores
/// shared_ptr<const PlanNode>, so a "copy" is a refcount bump). Each shard
/// holds at most `capacity_per_shard` entries; inserting into a full shard
/// evicts the least-recently-used entry of that shard.
template <typename V>
class ShardedGenCache {
 public:
  /// `num_shards` is rounded up to a power of two (>= 1) so the shard
  /// index is a mask, not a division.
  explicit ShardedGenCache(int num_shards = 16, int capacity_per_shard = 256)
      : capacity_per_shard_(capacity_per_shard) {
    HFQ_CHECK(num_shards >= 1 && capacity_per_shard >= 1);
    int rounded = 1;
    while (rounded < num_shards) rounded <<= 1;
    shards_ = std::vector<Shard>(static_cast<size_t>(rounded));
  }

  /// True (and *out filled) only when `key` is present with an entry whose
  /// identity matches byte-for-byte AND whose generation equals
  /// `generation`. An identity mismatch (fingerprint aliasing) or an older
  /// generation (policy swapped since the entry was cached) is a miss.
  bool Lookup(uint64_t key, const std::string& identity, uint64_t generation,
              V* out) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (it->second.identity != identity) {
      alias_rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (it->second.generation != generation) {
      stale_misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    it->second.last_use = ++shard.tick;
    *out = it->second.value;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Installs (key -> value) stamped with `identity` + `generation`,
  /// overwriting any previous occupant of the key (including an aliasing
  /// or stale one). Evicts the shard's LRU entry when the shard is full.
  void Insert(uint64_t key, std::string identity, uint64_t generation,
              V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() &&
        static_cast<int>(shard.entries.size()) >= capacity_per_shard_) {
      EvictLruLocked(&shard);
    }
    Entry& entry = shard.entries[key];
    entry.identity = std::move(identity);
    entry.generation = generation;
    entry.value = std::move(value);
    entry.last_use = ++shard.tick;
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drops every entry (stats survive).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.entries.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.entries.size();
    }
    return total;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  ShardedCacheStats stats() const {
    ShardedCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stale_misses = stale_misses_.load(std::memory_order_relaxed);
    s.alias_rejects = alias_rejects_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Entry {
    std::string identity;
    uint64_t generation = 0;
    V value{};
    uint64_t last_use = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
    uint64_t tick = 0;

    Shard() = default;
    // vector<Shard> construction only; shards are never copied while live.
    Shard(const Shard&) {}
  };

  Shard& ShardFor(uint64_t key) {
    // Upper bits: the low bits of a structural fingerprint are already
    // well mixed, but masking high bits keeps us honest for weaker keys.
    const uint64_t mixed = key ^ (key >> 32);
    return shards_[static_cast<size_t>(mixed) &
                   (shards_.size() - 1)];
  }

  void EvictLruLocked(Shard* shard) {
    auto victim = shard->entries.begin();
    for (auto it = shard->entries.begin(); it != shard->entries.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    shard->entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  int capacity_per_shard_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_misses_{0};
  std::atomic<uint64_t> alias_rejects_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace hfq

#endif  // HFQ_UTIL_SHARDED_CACHE_H_
