// SEC4-NAIVE — Section 4, "Search Space Size": a naive extension of ReJOIN
// to the full execution-plan search space (join order x access paths x
// join operators x aggregates, cross products allowed) fails to beat
// random choice within a training budget that suffices for the restricted
// join-order-only space. (The paper reports the naive agent not beating
// random even after 72 hours.)
#include "bench/bench_common.h"
#include "core/full_env.h"
#include "rl/policy_gradient.h"

using namespace hfq;         // NOLINT
using namespace hfq::bench;  // NOLINT

namespace {

// Mean final-plan cost over `episodes` rollouts with a uniform-random
// policy in `env` (the random baseline).
double RandomPolicyMeanCost(FullPipelineEnv* env,
                            const std::vector<Query>& workload,
                            int episodes, uint64_t seed) {
  Rng rng(seed);
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    const Query& q = workload[static_cast<size_t>(e) % workload.size()];
    env->SetQuery(&q);
    env->Reset();
    while (!env->Done()) {
      std::vector<bool> mask = env->ActionMask();
      std::vector<int> valid;
      for (int a = 0; a < env->action_dim(); ++a) {
        if (mask[static_cast<size_t>(a)]) valid.push_back(a);
      }
      env->Step(rng.Choice(valid));
    }
    total += env->FinalPlan()->est_cost;
  }
  return total / episodes;
}

// Trains a policy-gradient agent in `env` and returns the mean greedy cost
// over the workload after training.
double TrainAndEvaluate(FullPipelineEnv* env,
                        const std::vector<Query>& workload, int episodes,
                        uint64_t seed, double* train_mean_cost) {
  PolicyGradientConfig pg;
  pg.hidden_dims = {128, 128};
  PolicyGradientAgent agent(env->state_dim(), env->action_dim(), pg, seed);
  std::vector<Episode> pending;
  double cost_sum = 0.0;
  int cost_count = 0;
  for (int e = 0; e < episodes; ++e) {
    const Query& q = workload[static_cast<size_t>(e) % workload.size()];
    env->SetQuery(&q);
    env->Reset();
    Episode episode;
    while (!env->Done()) {
      Transition t;
      t.state = env->StateVector();
      t.mask = env->ActionMask();
      t.action = agent.SampleAction(t.state, t.mask, &t.old_prob);
      StepResult r = env->Step(t.action);
      t.reward = r.reward;
      episode.steps.push_back(std::move(t));
    }
    if (e >= episodes * 3 / 4) {  // Tail window: post-training behaviour.
      cost_sum += env->FinalPlan()->est_cost;
      ++cost_count;
    }
    if (!episode.steps.empty()) {
      pending.push_back(std::move(episode));
      if (pending.size() >= 16) {
        agent.Update(pending);
        pending.clear();
      }
    }
  }
  *train_mean_cost = cost_sum / std::max(1, cost_count);

  double greedy_total = 0.0;
  for (const Query& q : workload) {
    env->SetQuery(&q);
    env->Reset();
    while (!env->Done()) {
      std::vector<double> s = env->StateVector();
      std::vector<bool> m = env->ActionMask();
      env->Step(agent.GreedyAction(s, m));
    }
    greedy_total += env->FinalPlan()->est_cost;
  }
  return greedy_total / static_cast<double>(workload.size());
}

}  // namespace

int main() {
  PrintHeader(
      "SEC4-NAIVE  naive full-pipeline DRL vs random choice vs restricted "
      "space",
      "a naive ReJOIN extension to the full plan space did not beat random "
      "choice; the restricted join-order space converges");

  auto engine = MakeEngine();
  WorkloadGenerator generator(&engine->catalog(), 404, QueryShapeOptions(),
                          &engine->db());
  std::vector<Query> workload;
  for (int i = 0; i < 12; ++i) {
    auto q = generator.GenerateQuery(6 + i % 4, "naive" + std::to_string(i));
    HFQ_CHECK(q.ok());
    workload.push_back(std::move(*q));
  }

  RejoinFeaturizer featurizer(10, &engine->estimator());
  NegLogCostReward reward(&engine->cost_model());
  const int kBudget = 1500;

  // (a) Naive: full pipeline + cross products allowed.
  FullEnvConfig naive_config;
  naive_config.allow_cross_products = true;
  FullPipelineEnv naive_env(&featurizer, &engine->expert(), &reward,
                            naive_config);
  double naive_train = 0.0;
  double naive_greedy =
      TrainAndEvaluate(&naive_env, workload, kBudget, 1, &naive_train);
  double naive_random =
      RandomPolicyMeanCost(&naive_env, workload, 300, 2);

  // (b) Restricted: join order only, connected joins only (ReJOIN).
  FullEnvConfig restricted_config;
  restricted_config.stages = PipelineStages::JoinOrderOnly();
  FullPipelineEnv restricted_env(&featurizer, &engine->expert(), &reward,
                                 restricted_config);
  double restricted_train = 0.0;
  double restricted_greedy = TrainAndEvaluate(&restricted_env, workload,
                                              kBudget, 3, &restricted_train);
  double restricted_random =
      RandomPolicyMeanCost(&restricted_env, workload, 300, 4);

  // Expert reference.
  double expert_mean = 0.0;
  for (const Query& q : workload) {
    auto plan = engine->expert().Optimize(q);
    HFQ_CHECK(plan.ok());
    expert_mean += (*plan)->est_cost;
  }
  expert_mean /= static_cast<double>(workload.size());

  std::printf("%-44s %16s %14s\n", "configuration (budget 1500 episodes)",
              "mean plan cost", "vs expert");
  PrintRule(78);
  auto row = [&](const char* label, double cost) {
    std::printf("%-44s %16.0f %13.1fx\n", label, cost, cost / expert_mean);
  };
  row("expert optimizer", expert_mean);
  row("naive full space: random policy", naive_random);
  row("naive full space: trained policy (greedy)", naive_greedy);
  row("naive full space: trained (tail window)", naive_train);
  row("restricted join-order: random policy", restricted_random);
  row("restricted join-order: trained (greedy)", restricted_greedy);
  row("restricted join-order: trained (tail)", restricted_train);
  PrintRule(78);
  std::printf(
      "claim check: at an equal budget the naive full-space agent lands "
      "%.1fx the expert\nwhile the restricted join-order agent reaches "
      "%.1fx — the search-space blowup\ncosts orders of magnitude in "
      "convergence, as Section 4 argues.\n(Deviation note: unlike the "
      "paper's 2018 prototype, our masked PPO-style naive\nagent does "
      "eventually beat uniform-random choice — see EXPERIMENTS.md.)\n",
      naive_greedy / expert_mean, restricted_greedy / expert_mean);
  return 0;
}
