#include "rejoin/rejoin.h"

#include "util/check.h"
#include "util/stopwatch.h"

namespace hfq {

RejoinTrainer::RejoinTrainer(JoinOrderEnv* env, RejoinConfig config,
                             uint64_t seed)
    : env_(env),
      config_(config),
      agent_(env->state_dim(), env->action_dim(), config.pg, seed) {
  HFQ_CHECK(env != nullptr);
}

RejoinEpisodeStats RejoinTrainer::RunEpisode(const Query& query, bool train) {
  env_->SetQuery(&query);
  env_->Reset();
  RejoinEpisodeStats stats;
  stats.query_name = query.name;

  Episode episode;
  while (!env_->Done()) {
    Transition t;
    t.state = env_->StateVector();
    t.mask = env_->ActionMask();
    if (train) {
      t.action = agent_.SampleAction(t.state, t.mask, &t.old_prob);
    } else {
      t.action = agent_.GreedyAction(t.state, t.mask);
      t.old_prob = 1.0;
    }
    StepResult step = env_->Step(t.action);
    t.reward = step.reward;
    episode.steps.push_back(std::move(t));
    ++stats.steps;
  }
  stats.reward = episode.TotalReward();

  if (train && !episode.steps.empty()) {
    pending_.push_back(std::move(episode));
    if (static_cast<int>(pending_.size()) >= config_.episodes_per_update) {
      agent_.Update(pending_);
      pending_.clear();
    }
  }
  return stats;
}

void RejoinTrainer::Train(
    const std::vector<Query>& workload, int episodes,
    const std::function<void(int, const RejoinEpisodeStats&)>& on_episode) {
  HFQ_CHECK(!workload.empty());
  for (int e = 0; e < episodes; ++e) {
    const Query& query = workload[static_cast<size_t>(e) % workload.size()];
    RejoinEpisodeStats stats = RunEpisode(query, /*train=*/true);
    if (on_episode) on_episode(e, stats);
  }
  // Flush the trailing partial batch: leftover episodes would otherwise
  // carry stale old_prob values into a later Train/RunEpisode update,
  // corrupting the PPO ratios.
  FlushPendingEpisodes();
}

void RejoinTrainer::FlushPendingEpisodes() {
  if (pending_.empty()) return;
  agent_.Update(pending_);
  pending_.clear();
}

std::unique_ptr<JoinTreeNode> RejoinTrainer::Plan(const Query& query,
                                                  double* planning_ms_out) {
  env_->SetQuery(&query);
  env_->Reset();
  double inference_ms = 0.0;
  while (!env_->Done()) {
    Stopwatch watch;
    std::vector<double> state = env_->StateVector();
    std::vector<bool> mask = env_->ActionMask();
    int action = agent_.GreedyAction(state, mask);
    inference_ms += watch.ElapsedMillis();
    env_->Step(action);
  }
  if (planning_ms_out != nullptr) *planning_ms_out = inference_ms;
  return env_->FinalTree()->Clone();
}

}  // namespace hfq
