// Neural-network layers with explicit forward/backward passes. Batches are
// rows: a forward pass maps (batch x in) -> (batch x out).
#ifndef HFQ_NN_LAYER_H_
#define HFQ_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace hfq {

/// Base class for layers. Backward must be called after Forward with the
/// gradient of the loss w.r.t. this layer's output; it accumulates parameter
/// gradients and returns the gradient w.r.t. its input.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (batch x in_dim), caching
  /// whatever is needed for the subsequent Backward call.
  virtual Matrix Forward(const Matrix& input) = 0;

  /// Pure forward pass: writes the output into `*out` (reusing its
  /// allocation) without touching the layer's Backward caches. Safe for
  /// concurrent callers over a frozen layer — the thread-safe inference
  /// path. `out` must not alias `input`. Arithmetic is identical to
  /// Forward, so results are bit-for-bit the same.
  virtual void ForwardInto(const Matrix& input, Matrix* out) const = 0;

  /// Propagates `grad_output` (batch x out_dim) back, accumulating into the
  /// layer's parameter gradients, and returns grad w.r.t. the input.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Accumulates parameter gradients from `grad_output` without computing
  /// the gradient w.r.t. the layer's input — the network's first layer
  /// never needs it. Default: full Backward with the result discarded.
  virtual void BackwardParamsOnly(const Matrix& grad_output) {
    (void)Backward(grad_output);
  }

  /// Trainable parameters (empty for activations).
  virtual std::vector<Matrix*> Params() { return {}; }

  /// Gradients, parallel to Params().
  virtual std::vector<Matrix*> Grads() { return {}; }

  /// Layer type tag used by serialization ("linear", "relu", ...).
  virtual std::string Name() const = 0;

  /// Deep copy (weights included).
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

/// Fully connected layer: y = x W + b, W is (in x out), b is (1 x out).
class Linear : public Layer {
 public:
  /// Initializes W with He-normal (good default for ReLU nets) and b = 0.
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  void ForwardInto(const Matrix& input, Matrix* out) const override;
  Matrix Backward(const Matrix& grad_output) override;
  void BackwardParamsOnly(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> Grads() override {
    return {&grad_weight_, &grad_bias_};
  }
  std::string Name() const override { return "linear"; }
  std::unique_ptr<Layer> Clone() const override;

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }

 private:
  Matrix weight_;
  Matrix bias_;
  Matrix grad_weight_;
  Matrix grad_bias_;
  Matrix cached_input_;
};

/// Rectified linear activation.
class Relu : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  void ForwardInto(const Matrix& input, Matrix* out) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "relu"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Matrix cached_input_;
};

/// Hyperbolic tangent activation.
class TanhLayer : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  void ForwardInto(const Matrix& input, Matrix* out) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "tanh"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Logistic sigmoid activation.
class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  void ForwardInto(const Matrix& input, Matrix* out) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "sigmoid"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Matrix cached_output_;
};

/// Numerically stable row-wise softmax (pure function, not a Layer; policy
/// losses fold softmax into their gradient).
Matrix Softmax(const Matrix& logits);

/// Row-wise log-softmax.
Matrix LogSoftmax(const Matrix& logits);

}  // namespace hfq

#endif  // HFQ_NN_LAYER_H_
