// TrueCardinalityOracle: exact cardinalities for any subset of a query's
// relations, computed against the materialized data. This is what stands in
// for "run the plan and observe it" — it lets the latency simulator charge
// catastrophically bad plans their true (astronomical) work without
// wall-clock cost, which is precisely the capability the paper says real
// execution lacks (Section 4, "Performance Evaluation Overhead").
//
// Algorithm: connected components of the subset multiply (cross products are
// exact products); each connected component is counted by a grouped
// hash-join sweep that keeps, instead of materialized tuples, a map from
// "interface columns still needed by future joins" to multiplicities. State
// size is bounded by the distinct interface-value combinations, not by the
// (possibly enormous) intermediate row count.
#ifndef HFQ_STATS_TRUTH_ORACLE_H_
#define HFQ_STATS_TRUTH_ORACLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plan/query.h"
#include "stats/cardinality.h"
#include "storage/database.h"
#include "util/status.h"

namespace hfq {

/// Exact cardinalities from data. Memoizes per (query name, relset): query
/// names must uniquely identify queries within a run. This is enforced: a
/// per-name structural fingerprint is recorded on first contact, and a
/// later query reusing the name with a different structure trips an
/// HFQ_CHECK instead of silently returning the other query's cached
/// cardinalities.
///
/// Thread-safe: all memo state is guarded by one internal lock, so
/// concurrent rollout workers (whose latency simulations all consult this
/// oracle) can share a single instance. Uncached counts serialize — the
/// memo makes repeat queries cheap either way.
class TrueCardinalityOracle : public CardinalitySource {
 public:
  struct Options {
    Options() {}
    /// Cap on grouped-state entries; above this the count falls back to the
    /// cross-product upper bound (conservatively huge — still "catastrophic"
    /// for any consumer).
    uint64_t max_group_entries = 4u * 1000u * 1000u;
  };

  /// `db` must outlive the oracle.
  explicit TrueCardinalityOracle(const Database* db,
                                 Options options = Options());

  double Rows(const Query& query, RelSet s) override;
  double BaseRows(const Query& query, int rel) override;
  double GroupRows(const Query& query) override;
  double RowsWithSelections(const Query& query, int rel,
                            const std::vector<int>& sel_idxs) override;

  /// Row ids of `rel` passing all its selection predicates (cached).
  const std::vector<int64_t>& SelectedRows(const Query& query, int rel);

  /// Exact count for a connected component; exposed for testing.
  Result<double> CountConnectedExact(const Query& query, RelSet component);

 private:
  double CountComponent(const Query& query, RelSet component);

  /// SelectedRows without the cache-identity check, for internal callers
  /// inside an already-checked public entry point (the component sweep
  /// calls it O(n^2) times per query).
  const std::vector<int64_t>& SelectedRowsImpl(const Query& query, int rel);

  /// Guards the name-keyed caches: checks `query`'s structural fingerprint
  /// against the one first recorded for its name. Called once per public
  /// entry, under mu_.
  void CheckCacheIdentity(const Query& query);

  const Database* db_;
  Options options_;
  /// Recursive: public entries nest (Rows -> CountConnectedExact,
  /// GroupRows -> Rows) while holding the lock.
  std::recursive_mutex mu_;
  std::map<std::string, uint64_t> fingerprint_cache_;
  std::map<std::pair<std::string, int>, std::vector<int64_t>> selected_cache_;
  std::map<std::pair<std::string, RelSet>, double> count_cache_;
  std::map<std::string, double> group_cache_;
};

}  // namespace hfq

#endif  // HFQ_STATS_TRUTH_ORACLE_H_
