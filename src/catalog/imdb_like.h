// A synthetic IMDB-like schema mirroring the 21 tables of the Join Order
// Benchmark's database, scaled down so that every connected join is cheap to
// execute exactly. Substitutes for the real IMDB dataset (see DESIGN.md):
// what the paper's experiments need from IMDB is (a) a rich snowflake join
// graph, (b) skewed and correlated data that defeats independence-assumption
// cardinality estimation. Both are preserved here.
#ifndef HFQ_CATALOG_IMDB_LIKE_H_
#define HFQ_CATALOG_IMDB_LIKE_H_

#include "catalog/catalog.h"
#include "util/status.h"

namespace hfq {

/// Knobs for the synthetic IMDB-like database.
struct ImdbLikeOptions {
  /// Multiplies every table's base row count. scale=1.0 gives a `title`
  /// table of 20k rows and a `cast_info` table of 100k rows.
  double scale = 1.0;
  /// Zipf skew applied to popular foreign keys (movie_id, person_id, ...).
  double fk_skew = 0.7;
  /// Strength of injected attribute correlations in [0, 1]; higher values
  /// produce larger cardinality-estimation errors.
  double correlation = 0.6;
  /// Create B-tree + hash indexes on foreign-key columns (gives the
  /// index-selection stage real choices).
  bool create_fk_indexes = true;
};

/// Builds the catalog (tables + indexes) for the synthetic IMDB-like
/// database. Data is materialized separately by storage::DataGenerator.
Result<Catalog> BuildImdbLikeCatalog(const ImdbLikeOptions& options);

}  // namespace hfq

#endif  // HFQ_CATALOG_IMDB_LIKE_H_
