// Tests for src/sql: lexer tokens, parser happy paths, resolution rules,
// and error reporting.
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_common.h"

namespace hfq {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  const Catalog& catalog() { return testing::SharedEngine().catalog(); }
};

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a.b, 42 <= 3.5 (*) ; != <>");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.type);
  EXPECT_EQ(kinds[0], TokenType::kIdentifier);
  EXPECT_EQ(kinds[1], TokenType::kIdentifier);
  EXPECT_EQ(kinds[2], TokenType::kDot);
  EXPECT_EQ(kinds[3], TokenType::kIdentifier);
  EXPECT_EQ(kinds[4], TokenType::kComma);
  EXPECT_EQ(kinds[5], TokenType::kInteger);
  EXPECT_EQ(kinds[6], TokenType::kOperator);
  EXPECT_EQ(kinds[7], TokenType::kDouble);
  EXPECT_EQ(kinds.back(), TokenType::kEnd);
  EXPECT_EQ((*tokens)[5].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[7].double_value, 3.5);
}

TEST(LexerTest, NegativeNumbersAndErrors) {
  auto tokens = Tokenize("x = -7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].int_value, -7);
  EXPECT_FALSE(Tokenize("a $ b").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999999").ok());
}

TEST_F(SqlTest, ParsesSimpleSelect) {
  auto q = ParseSql("SELECT * FROM title WHERE title.production_year > 50",
                    catalog(), "q1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name, "q1");
  EXPECT_EQ(q->num_relations(), 1);
  ASSERT_EQ(q->selections.size(), 1u);
  EXPECT_EQ(q->selections[0].op, CmpOp::kGt);
  EXPECT_EQ(q->selections[0].value.i, 50);
  EXPECT_TRUE(q->joins.empty());
}

TEST_F(SqlTest, ParsesJoinsAndAliases) {
  auto q = ParseSql(
      "SELECT * FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND ci.nr_order < 3;",
      catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 2);
  EXPECT_EQ(q->relations[0].alias, "t");
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left.column, "movie_id");
  ASSERT_EQ(q->selections.size(), 1u);
}

TEST_F(SqlTest, ParsesSelfJoinWithAs) {
  auto q = ParseSql(
      "SELECT * FROM title AS t1, title AS t2, movie_link ml "
      "WHERE ml.movie_id = t1.id AND ml.linked_movie_id = t2.id",
      catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 3);
  EXPECT_EQ(q->relations[0].table, "title");
  EXPECT_EQ(q->relations[1].table, "title");
  EXPECT_EQ(q->joins.size(), 2u);
  EXPECT_TRUE(q->IsFullyConnected());
}

TEST_F(SqlTest, ParsesAggregatesAndGroupBy) {
  auto q = ParseSql(
      "SELECT t.kind_id, count(*), min(t.production_year) FROM title t "
      "GROUP BY t.kind_id",
      catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->aggregates[0].func, AggFunc::kCount);
  EXPECT_FALSE(q->aggregates[0].has_arg);
  EXPECT_EQ(q->aggregates[1].func, AggFunc::kMin);
  EXPECT_TRUE(q->aggregates[1].has_arg);
  // t.kind_id appears once as a group key (select-list copy is merged by
  // Validate-time dedup being absent — both entries name the same column).
  ASSERT_GE(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0].column, "kind_id");
}

TEST_F(SqlTest, ResolvesUnqualifiedUniqueColumn) {
  auto q = ParseSql(
      "SELECT * FROM cast_info WHERE nr_order = 2", catalog());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->selections[0].column.rel_idx, 0);
}

TEST_F(SqlTest, RejectsAmbiguousColumn) {
  auto q = ParseSql(
      "SELECT * FROM title t1, title t2 WHERE production_year = 5",
      catalog());
  EXPECT_FALSE(q.ok());
}

TEST_F(SqlTest, RejectsUnknownTableColumnAlias) {
  EXPECT_FALSE(ParseSql("SELECT * FROM nope", catalog()).ok());
  EXPECT_FALSE(
      ParseSql("SELECT * FROM title WHERE title.zzz = 1", catalog()).ok());
  EXPECT_FALSE(
      ParseSql("SELECT * FROM title WHERE bogus.id = 1", catalog()).ok());
}

TEST_F(SqlTest, RejectsMalformedSyntax) {
  EXPECT_FALSE(ParseSql("FROM title", catalog()).ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM", catalog()).ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM title WHERE", catalog()).ok());
  EXPECT_FALSE(
      ParseSql("SELECT * FROM title WHERE title.id >", catalog()).ok());
  EXPECT_FALSE(
      ParseSql("SELECT * FROM title t trailing garbage here", catalog())
          .ok());
}

TEST_F(SqlTest, RejectsNonEquiJoin) {
  EXPECT_FALSE(ParseSql(
                   "SELECT * FROM title t, cast_info ci "
                   "WHERE ci.movie_id < t.id",
                   catalog())
                   .ok());
}

TEST_F(SqlTest, RejectsIntraRelationJoin) {
  EXPECT_FALSE(ParseSql(
                   "SELECT * FROM title t WHERE t.id = t.kind_id", catalog())
                   .ok());
}

TEST_F(SqlTest, RoundTripThroughToSql) {
  auto q1 = ParseSql(
      "SELECT count(*) FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND t.production_year >= 10",
      catalog(), "rt");
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseSql(q1->ToSql(), catalog(), "rt");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\nsql: " << q1->ToSql();
  EXPECT_EQ(q2->num_relations(), q1->num_relations());
  EXPECT_EQ(q2->joins.size(), q1->joins.size());
  EXPECT_EQ(q2->selections.size(), q1->selections.size());
  EXPECT_EQ(q2->aggregates.size(), q1->aggregates.size());
}

TEST_F(SqlTest, DoubleValuedPredicates) {
  auto q = ParseSql("SELECT * FROM title WHERE title.production_year < 10.5",
                    catalog());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->selections[0].value.is_double);
  EXPECT_DOUBLE_EQ(q->selections[0].value.d, 10.5);
}

TEST_F(SqlTest, OperatorSpellingVariants) {
  auto q = ParseSql(
      "SELECT * FROM title WHERE title.kind_id <> 1 AND "
      "title.season_nr != 2 AND title.episode_nr <= 3",
      catalog());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selections[0].op, CmpOp::kNe);
  EXPECT_EQ(q->selections[1].op, CmpOp::kNe);
  EXPECT_EQ(q->selections[2].op, CmpOp::kLe);
}

}  // namespace
}  // namespace hfq
