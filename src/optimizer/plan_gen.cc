#include "optimizer/plan_gen.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "optimizer/optimizer.h"
#include "util/check.h"

namespace hfq {
namespace {

// Connected components of the query's join graph, in lowest-member order.
std::vector<RelSet> JoinGraphComponents(const Query& query) {
  std::vector<RelSet> components;
  RelSet seen = 0;
  for (int rel = 0; rel < query.num_relations(); ++rel) {
    if (seen & RelSetOf(rel)) continue;
    RelSet comp = RelSetOf(rel);
    for (;;) {
      RelSet next = comp | query.NeighborsOfSet(comp);
      if (next == comp) break;
      comp = next;
    }
    components.push_back(comp);
    seen |= comp;
  }
  return components;
}

}  // namespace

bool OrderingCovers(const PlanOrdering& a, const PlanOrdering& b) {
  if (!b.sorted) return true;
  return a == b;
}

PlanOrdering DerivePlanOrdering(const Query& query, const PlanNode& plan) {
  PlanOrdering ordering;
  switch (plan.op) {
    case PhysicalOp::kIndexScan:
      if (plan.index_kind == IndexKind::kBTree) {
        ordering.sorted = true;
        ordering.rel_idx = plan.rel_idx;
        ordering.column = plan.index_column;
      }
      break;
    case PhysicalOp::kMergeJoin: {
      // Sort-merge leaves the output ordered on the (outer-side) key of
      // the predicate it merged on.
      if (plan.join_pred_idxs.empty() || plan.children.empty()) break;
      const JoinPredicate& jp =
          query.joins[static_cast<size_t>(plan.join_pred_idxs[0])];
      const PlanNode* outer = plan.child(0);
      const ColumnRef& key =
          RelSetHas(outer->rels, jp.left.rel_idx) ? jp.left : jp.right;
      ordering.sorted = true;
      ordering.rel_idx = key.rel_idx;
      ordering.column = key.column;
      break;
    }
    default:
      break;
  }
  return ordering;
}

bool Subproblem::AddPlan(PlanNodePtr plan, PlanOrdering ordering,
                         int max_plans, PlanGenStats* stats) {
  HFQ_CHECK(plan != nullptr);
  if (max_plans < 1) max_plans = 1;
  if (stats != nullptr) stats->candidates++;
  const int64_t old_size = static_cast<int64_t>(plans.size());
  const double cost = plan->est_cost;

  // Rejection: some retained plan costs no more and its ordering covers the
  // newcomer's — the newcomer can never beat it for any consumer. Cost ties
  // resolve in favour of the incumbent, which keeps the cheapest-plan
  // choice identical to the historic strict-< DP replacement rule.
  for (const SubPlan& e : plans) {
    if (e.plan->est_cost <= cost && OrderingCovers(e.ordering, ordering)) {
      if (stats != nullptr) {
        stats->plans_dominated++;
      }
      return false;
    }
  }

  // Eviction: retained plans that cost strictly more under an ordering the
  // newcomer covers are now dominated. (Strictly: a cost tie keeps both, so
  // an equal-cost plan can never displace an earlier-accepted one.)
  for (size_t i = plans.size(); i-- > 0;) {
    if (plans[i].plan->est_cost > cost &&
        OrderingCovers(ordering, plans[i].ordering)) {
      plans.erase(plans.begin() + static_cast<ptrdiff_t>(i));
      if (stats != nullptr) stats->plans_dominated++;
    }
  }
  plans.push_back(SubPlan{std::move(plan), ordering});

  // Cheapest = lowest-index minimum. Acceptance rejects newcomers tied with
  // an incumbent of covering ordering and eviction only removes strictly
  // costlier plans, so the lowest-index minimum is always the *first*
  // accepted plan of minimum cost — the same plan sequential strict-<
  // tracking would keep.
  auto recompute_cheapest = [this]() {
    cheapest = 0;
    for (size_t i = 1; i < plans.size(); ++i) {
      if (plans[i].plan->est_cost <
          plans[static_cast<size_t>(cheapest)].plan->est_cost) {
        cheapest = static_cast<int>(i);
      }
    }
  };
  recompute_cheapest();

  // Budget truncation: evict the costliest non-cheapest plan (ties: the
  // newest), deterministically, until within budget. The cheapest plan is
  // never evicted, so any budget >= 1 preserves exactness of the cheapest
  // cost.
  int newcomer = static_cast<int>(plans.size()) - 1;
  while (static_cast<int>(plans.size()) > max_plans) {
    int victim = -1;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (static_cast<int>(i) == cheapest) continue;
      if (victim < 0 ||
          plans[i].plan->est_cost >=
              plans[static_cast<size_t>(victim)].plan->est_cost) {
        victim = static_cast<int>(i);
      }
    }
    HFQ_CHECK(victim >= 0);
    plans.erase(plans.begin() + victim);
    if (victim < cheapest) cheapest--;
    if (victim == newcomer) {
      newcomer = -1;
    } else if (newcomer >= 0 && victim < newcomer) {
      newcomer--;
    }
    if (stats != nullptr) stats->plans_truncated++;
  }
  if (stats != nullptr) {
    stats->plans_kept += static_cast<int64_t>(plans.size()) - old_size;
  }
  return newcomer >= 0;
}

const PlanNode* Subproblem::CheapestPlan() const {
  HFQ_CHECK(cheapest >= 0 &&
            cheapest < static_cast<int>(plans.size()));
  return plans[static_cast<size_t>(cheapest)].plan.get();
}

PlanGenerator::PlanGenerator(TraditionalOptimizer* optimizer,
                             const Query& query, PlanGenOptions options)
    : optimizer_(optimizer), query_(query), options_(options) {
  HFQ_CHECK(optimizer != nullptr);
}

Result<std::vector<RelSet>> PlanGenerator::ConnectedSubsets(
    const Query& query, int64_t max_subproblems) {
  const int n = query.num_relations();
  // Every connected subset of size k+1 is a connected subset of size k plus
  // one neighbor, so growing from singletons with a dedup set enumerates
  // each connected subset exactly once — 2^n never appears for sparse
  // graphs (a 20-relation chain has 210 connected subsets). The budget
  // check runs during growth: a graph denser than the budget is rejected
  // before any planning work happens.
  std::unordered_set<RelSet> seen;
  std::vector<RelSet> pending;
  seen.reserve(64);
  for (int rel = 0; rel < n; ++rel) {
    seen.insert(RelSetOf(rel));
    pending.push_back(RelSetOf(rel));
  }
  if (static_cast<int64_t>(seen.size()) > max_subproblems) {
    return Status::ResourceExhausted(
        "join graph exceeds the DP subproblem budget");
  }
  while (!pending.empty()) {
    RelSet s = pending.back();
    pending.pop_back();
    RelSet nb = query.NeighborsOfSet(s);
    while (nb != 0) {
      int rel = std::countr_zero(nb);
      nb &= nb - 1;
      RelSet grown = s | RelSetOf(rel);
      if (!seen.insert(grown).second) continue;
      pending.push_back(grown);
      if (static_cast<int64_t>(seen.size()) > max_subproblems) {
        return Status::ResourceExhausted(
            "join graph induces more than " +
            std::to_string(max_subproblems) +
            " connected subproblems; DP enumeration over-budget");
      }
    }
  }
  std::vector<RelSet> out(seen.begin(), seen.end());
  // Ascending mask order visits every subset before any of its supersets,
  // which is all the DP below needs.
  std::sort(out.begin(), out.end());
  return out;
}

Result<PlanNodePtr> PlanGenerator::FindCheapestJoinPlan() {
  const int n = query_.num_relations();
  HFQ_CHECK(n >= 2);
  const std::vector<RelSet> components = JoinGraphComponents(query_);

  // Subproblem universe, per component: small components get the full
  // historic subset space (bit-identical plans to the pre-plan_gen
  // enumerator, clauseless-join cross products included); large components
  // get connected subgraphs only (scalable on sparse graphs; see
  // PlanGenOptions::exhaustive_relations).
  std::unordered_set<RelSet> seen;
  std::vector<RelSet> pending;
  for (RelSet comp : components) {
    const int comp_size = RelSetCount(comp);
    if (comp_size <= options_.exhaustive_relations) {
      const int64_t comp_subsets = (int64_t{1} << comp_size) - 1;
      if (comp_subsets + static_cast<int64_t>(seen.size()) >
          options_.max_subproblems) {
        return Status::ResourceExhausted(
            "join graph induces more than " +
            std::to_string(options_.max_subproblems) +
            " DP subproblems; enumeration over-budget");
      }
      for (RelSet sub = comp; sub != 0; sub = (sub - 1) & comp) {
        seen.insert(sub);
      }
    } else {
      for (int rel : RelSetMembers(comp)) {
        seen.insert(RelSetOf(rel));
        pending.push_back(RelSetOf(rel));
      }
      if (static_cast<int64_t>(seen.size()) > options_.max_subproblems) {
        return Status::ResourceExhausted(
            "join graph induces more than " +
            std::to_string(options_.max_subproblems) +
            " DP subproblems; enumeration over-budget");
      }
    }
  }
  while (!pending.empty()) {
    RelSet s = pending.back();
    pending.pop_back();
    RelSet nb = query_.NeighborsOfSet(s);
    while (nb != 0) {
      int rel = std::countr_zero(nb);
      nb &= nb - 1;
      RelSet grown = s | RelSetOf(rel);
      if (!seen.insert(grown).second) continue;
      pending.push_back(grown);
      if (static_cast<int64_t>(seen.size()) > options_.max_subproblems) {
        return Status::ResourceExhausted(
            "join graph induces more than " +
            std::to_string(options_.max_subproblems) +
            " connected subproblems; DP enumeration over-budget");
      }
    }
  }
  std::vector<RelSet> subsets(seen.begin(), seen.end());
  // Ascending mask order visits every subset before any of its supersets,
  // which is all the DP needs.
  std::sort(subsets.begin(), subsets.end());

  table_.clear();
  table_.reserve(subsets.size());
  stats_ = PlanGenStats();
  stats_.subproblems = static_cast<int64_t>(subsets.size());

  for (RelSet s : subsets) {
    Subproblem sp;
    if (RelSetCount(s) == 1) {
      PlanNodePtr scan =
          optimizer_->BestAccessPath(query_, std::countr_zero(s));
      PlanOrdering ordering = DerivePlanOrdering(query_, *scan);
      sp.AddPlan(std::move(scan), ordering,
                 options_.max_plans_per_subproblem, &stats_);
      table_.emplace(s, std::move(sp));
      continue;
    }
    // Split walk in the historic DPsize order (descending submask walk,
    // unordered pairs, outer-then-swapped candidates) so cost ties resolve
    // to the same plan the pre-plan_gen enumerator chose.
    auto consider = [&](RelSet s1, RelSet s2) {
      auto it1 = table_.find(s1);
      if (it1 == table_.end()) return;  // Not a materialized subproblem.
      auto it2 = table_.find(s2);
      if (it2 == table_.end()) return;
      const PlanNode* p1 = it1->second.CheapestPlan();
      const PlanNode* p2 = it2->second.CheapestPlan();
      PlanNodePtr ab = optimizer_->BestJoin(query_, p1->Clone(), p2->Clone());
      PlanOrdering ab_ord = DerivePlanOrdering(query_, *ab);
      sp.AddPlan(std::move(ab), ab_ord, options_.max_plans_per_subproblem,
                 &stats_);
      PlanNodePtr ba = optimizer_->BestJoin(query_, p2->Clone(), p1->Clone());
      PlanOrdering ba_ord = DerivePlanOrdering(query_, *ba);
      sp.AddPlan(std::move(ba), ba_ord, options_.max_plans_per_subproblem,
                 &stats_);
    };
    // First pass: only splits connected by at least one join predicate.
    // Table lookups run before the predicate scan: on sparse graphs most
    // submasks are not materialized subproblems, and the O(1) misses keep
    // the 2^|s| walk from paying O(#joins) per iteration.
    for (RelSet s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      RelSet s2 = s & ~s1;
      if (s1 > s2) continue;  // Unordered pairs; orientations in consider.
      if (table_.find(s1) == table_.end() ||
          table_.find(s2) == table_.end()) {
        continue;
      }
      if (query_.JoinPredsBetween(s1, s2).empty()) continue;
      consider(s1, s2);
    }
    // Second pass (only when no predicate-connected split produced a
    // plan): cross products, so the internally-disconnected subsets of the
    // exhaustive regime still plan. Connected subproblems never get here —
    // a connected set of size >= 2 always has a predicate-connected split
    // into two connected parts (drop one spanning-tree edge), both already
    // in the table by ascending mask order.
    if (sp.plans.empty()) {
      for (RelSet s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
        RelSet s2 = s & ~s1;
        if (s1 > s2) continue;
        consider(s1, s2);
      }
    }
    HFQ_CHECK_MSG(!sp.plans.empty(),
                  "DP subproblem admitted no usable split");
    table_.emplace(s, std::move(sp));
  }

  auto take_cheapest = [this](RelSet s) -> PlanNodePtr {
    auto it = table_.find(s);
    HFQ_CHECK(it != table_.end());
    Subproblem& sp = it->second;
    return std::move(sp.plans[static_cast<size_t>(sp.cheapest)].plan);
  };
  if (components.size() == 1) {
    return take_cheapest(RelSetAll(n));
  }

  // Cross-combination DP over the component plans: every component's
  // output cardinality is fixed by the cardinality model (it depends on
  // the relation set, not the plan), so component-optimal subplans are
  // globally optimal and only the cross-join shape remains to optimize.
  const int k = static_cast<int>(components.size());
  HFQ_CHECK(k <= 20);  // 2^k combination states; queries are far smaller.
  std::vector<PlanNodePtr> comp_best(static_cast<size_t>(1) << k);
  for (int c = 0; c < k; ++c) {
    comp_best[static_cast<size_t>(1) << c] =
        take_cheapest(components[static_cast<size_t>(c)]);
  }
  const uint32_t full = (static_cast<uint32_t>(1) << k) - 1;
  for (uint32_t m = 1; m <= full; ++m) {
    if (std::popcount(m) < 2) continue;
    PlanNodePtr& slot = comp_best[m];
    for (uint32_t m1 = (m - 1) & m; m1 != 0; m1 = (m1 - 1) & m) {
      uint32_t m2 = m & ~m1;
      if (m1 > m2) continue;
      PlanNodePtr candidate = optimizer_->BestJoinEitherOrientation(
          query_, comp_best[m1]->Clone(), comp_best[m2]->Clone());
      if (slot == nullptr || candidate->est_cost < slot->est_cost) {
        slot = std::move(candidate);
      }
    }
  }
  return std::move(comp_best[full]);
}

}  // namespace hfq
