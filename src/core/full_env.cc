#include "core/full_env.h"

#include <algorithm>

#include "util/check.h"

namespace hfq {
namespace {

// Derives the logical join tree (with orientation) under a physical plan.
std::unique_ptr<JoinTreeNode> ExtractJoinTree(const PlanNode& node) {
  if (node.IsAggregate()) return ExtractJoinTree(*node.child(0));
  if (node.IsScan()) return JoinTreeNode::Leaf(node.rel_idx);
  HFQ_CHECK(node.IsJoin());
  return JoinTreeNode::Join(ExtractJoinTree(*node.child(0)),
                            ExtractJoinTree(*node.child(1)));
}

// Finds the scan node for a relation in a physical plan (nullptr if none).
const PlanNode* FindScanNode(const PlanNode& node, int rel) {
  if (node.IsScan()) return node.rel_idx == rel ? &node : nullptr;
  for (const auto& child : node.children) {
    const PlanNode* found = FindScanNode(*child, rel);
    if (found != nullptr) return found;
  }
  return nullptr;
}

// Finds the join node covering exactly `rels` (nullptr if none).
const PlanNode* FindJoinNode(const PlanNode& node, RelSet rels) {
  if (node.IsJoin() && node.rels == rels) return &node;
  for (const auto& child : node.children) {
    const PlanNode* found = FindJoinNode(*child, rels);
    if (found != nullptr) return found;
  }
  return nullptr;
}

int JoinOpToAction(PhysicalOp op) {
  switch (op) {
    case PhysicalOp::kNestedLoopJoin:
      return 0;
    case PhysicalOp::kIndexNestedLoopJoin:
      return 1;
    case PhysicalOp::kHashJoin:
      return 2;
    case PhysicalOp::kMergeJoin:
      return 3;
    default:
      HFQ_CHECK_MSG(false, "not a join op");
      return 0;
  }
}

PhysicalOp ActionToJoinOp(int action) {
  switch (action) {
    case 0:
      return PhysicalOp::kNestedLoopJoin;
    case 1:
      return PhysicalOp::kIndexNestedLoopJoin;
    case 2:
      return PhysicalOp::kHashJoin;
    case 3:
      return PhysicalOp::kMergeJoin;
    default:
      HFQ_CHECK_MSG(false, "bad join-op action");
      return PhysicalOp::kHashJoin;
  }
}

}  // namespace

PipelineStages PipelineStages::Prefix(int k) {
  PipelineStages s{false, false, false, false};
  if (k >= 1) s.join_order = true;
  if (k >= 2) s.access_paths = true;
  if (k >= 3) s.join_operators = true;
  if (k >= 4) s.aggregate_operator = true;
  return s;
}

FullPipelineEnv::FullPipelineEnv(RejoinFeaturizer* featurizer,
                                 TraditionalOptimizer* expert,
                                 RewardSignal* reward, FullEnvConfig config)
    : featurizer_(featurizer),
      expert_(expert),
      reward_(reward),
      config_(config) {
  HFQ_CHECK(featurizer != nullptr && expert != nullptr && reward != nullptr);
}

void FullPipelineEnv::SetQuery(const Query* query) {
  HFQ_CHECK(query != nullptr);
  HFQ_CHECK(query->num_relations() <= featurizer_->max_relations());
  query_ = query;
  stage_ = Stage::kDone;
}

void FullPipelineEnv::set_reward(RewardSignal* reward) {
  HFQ_CHECK(reward != nullptr);
  reward_ = reward;
}

int FullPipelineEnv::state_dim() const {
  const int n = featurizer_->max_relations();
  return featurizer_->FeatureDim() + 4 + 2 * n;
}

int FullPipelineEnv::action_dim() const {
  const int n = featurizer_->max_relations();
  return n * n;
}

void FullPipelineEnv::Reset() {
  HFQ_CHECK_MSG(query_ != nullptr, "SetQuery before Reset");
  const int n = query_->num_relations();
  subtrees_.clear();
  tree_.reset();
  internal_nodes_.clear();
  access_choice_.assign(static_cast<size_t>(n), -1);
  join_op_choice_.clear();
  agg_choice_ = -1;
  access_cursor_ = 0;
  join_op_cursor_ = 0;
  final_plan_.reset();

  if (n == 1 || !config_.stages.join_order) {
    if (n == 1) {
      tree_ = JoinTreeNode::Leaf(0);
    } else {
      // Expert supplies the join order; the agent decides later stages.
      auto expert_plan = expert_->Optimize(*query_);
      HFQ_CHECK_MSG(expert_plan.ok(), "expert failed to plan");
      tree_ = ExtractJoinTree(**expert_plan);
    }
    internal_nodes_.clear();
    tree_->InternalNodesPostOrder(&internal_nodes_);
    join_op_choice_.assign(internal_nodes_.size(), -1);
    stage_ = Stage::kAccessPath;
  } else {
    for (int rel = 0; rel < n; ++rel) {
      subtrees_.push_back(JoinTreeNode::Leaf(rel));
    }
    stage_ = Stage::kJoinOrder;
  }
  SkipTrivialDecisions();
}

std::vector<int> FullPipelineEnv::ValidAccessActions(int rel) const {
  std::vector<int> valid = {0};
  if (PickIndexPredicate(rel, IndexKind::kBTree) >= 0) valid.push_back(1);
  if (PickIndexPredicate(rel, IndexKind::kHash) >= 0) valid.push_back(2);
  return valid;
}

int FullPipelineEnv::PickIndexPredicate(int rel, IndexKind kind) const {
  const auto& rel_ref = query_->relations[static_cast<size_t>(rel)];
  const Catalog* catalog = expert_->catalog();
  CardinalityEstimator* est = featurizer_->estimator();
  int best = -1;
  double best_sel = 2.0;
  for (int s : query_->SelectionsOn(rel)) {
    const auto& sel = query_->selections[static_cast<size_t>(s)];
    if (sel.op == CmpOp::kNe) continue;
    if (kind == IndexKind::kHash && sel.op != CmpOp::kEq) continue;
    if (catalog->FindIndex(rel_ref.table, sel.column.column, kind) ==
        nullptr) {
      continue;
    }
    double s_est = est->SelectionSelectivity(*query_, s);
    if (s_est < best_sel) {
      best_sel = s_est;
      best = s;
    }
  }
  return best;
}

std::vector<int> FullPipelineEnv::ValidJoinOpActions(
    const JoinTreeNode& node) const {
  std::vector<int> valid;
  std::vector<int> preds =
      query_->JoinPredsBetween(node.left->rels, node.right->rels);
  valid.push_back(0);  // NLJ always possible.
  if (preds.empty()) return valid;
  // INLJ: inner (right) must be a base relation with an index on one of the
  // join columns.
  if (node.right->IsLeaf()) {
    int inner_rel = node.right->rel_idx;
    const auto& rel_ref = query_->relations[static_cast<size_t>(inner_rel)];
    for (int pi : preds) {
      const auto& jp = query_->joins[static_cast<size_t>(pi)];
      const ColumnRef& inner_col =
          jp.left.rel_idx == inner_rel ? jp.left : jp.right;
      if (expert_->catalog()->FindIndex(rel_ref.table, inner_col.column,
                                        IndexKind::kHash) != nullptr ||
          expert_->catalog()->FindIndex(rel_ref.table, inner_col.column,
                                        IndexKind::kBTree) != nullptr) {
        valid.push_back(1);
        break;
      }
    }
  }
  valid.push_back(2);  // Hash.
  valid.push_back(3);  // Merge.
  std::sort(valid.begin(), valid.end());
  return valid;
}

void FullPipelineEnv::AdvanceStage() {
  switch (stage_) {
    case Stage::kJoinOrder:
      stage_ = Stage::kAccessPath;
      break;
    case Stage::kAccessPath:
      stage_ = Stage::kJoinOp;
      break;
    case Stage::kJoinOp:
      stage_ = Stage::kAggregate;
      break;
    case Stage::kAggregate:
      stage_ = Stage::kDone;
      break;
    case Stage::kDone:
      break;
  }
}

void FullPipelineEnv::SkipTrivialDecisions() {
  const int n = query_->num_relations();
  for (;;) {
    switch (stage_) {
      case Stage::kJoinOrder:
        if (subtrees_.size() > 1) return;  // Real decision pending.
        if (!subtrees_.empty()) {
          tree_ = std::move(subtrees_[0]);
          subtrees_.clear();
          internal_nodes_.clear();
          tree_->InternalNodesPostOrder(&internal_nodes_);
          join_op_choice_.assign(internal_nodes_.size(), -1);
        }
        AdvanceStage();
        break;
      case Stage::kAccessPath: {
        if (!config_.stages.access_paths) {
          access_cursor_ = n;
        }
        while (access_cursor_ < n &&
               ValidAccessActions(access_cursor_).size() <= 1) {
          ++access_cursor_;
        }
        if (access_cursor_ < n) return;
        AdvanceStage();
        break;
      }
      case Stage::kJoinOp: {
        if (!config_.stages.join_operators) {
          join_op_cursor_ = static_cast<int>(internal_nodes_.size());
        }
        while (join_op_cursor_ < static_cast<int>(internal_nodes_.size()) &&
               ValidJoinOpActions(*internal_nodes_[
                                      static_cast<size_t>(join_op_cursor_)])
                       .size() <= 1) {
          ++join_op_cursor_;
        }
        if (join_op_cursor_ < static_cast<int>(internal_nodes_.size())) {
          return;
        }
        AdvanceStage();
        break;
      }
      case Stage::kAggregate: {
        const bool has_agg =
            !query_->aggregates.empty() || !query_->group_by.empty();
        if (config_.stages.aggregate_operator && has_agg) return;
        AdvanceStage();
        break;
      }
      case Stage::kDone:
        FinishEpisode();
        return;
    }
  }
}

std::vector<double> FullPipelineEnv::StateVector() const {
  HFQ_CHECK(query_ != nullptr);
  const int n = featurizer_->max_relations();

  std::vector<const JoinTreeNode*> subtrees;
  if (stage_ == Stage::kJoinOrder) {
    for (const auto& t : subtrees_) subtrees.push_back(t.get());
  } else if (tree_ != nullptr) {
    subtrees.push_back(tree_.get());
  }
  std::vector<double> features =
      featurizer_->Featurize(*query_, subtrees, &feat_cache_);

  // Stage one-hot.
  std::vector<double> extra(static_cast<size_t>(4 + 2 * n), 0.0);
  int stage_idx = -1;
  switch (stage_) {
    case Stage::kJoinOrder:
      stage_idx = 0;
      break;
    case Stage::kAccessPath:
      stage_idx = 1;
      break;
    case Stage::kJoinOp:
      stage_idx = 2;
      break;
    case Stage::kAggregate:
      stage_idx = 3;
      break;
    case Stage::kDone:
      break;
  }
  if (stage_idx >= 0) extra[static_cast<size_t>(stage_idx)] = 1.0;

  // Decision-target encodings.
  if (stage_ == Stage::kAccessPath &&
      access_cursor_ < query_->num_relations()) {
    extra[static_cast<size_t>(4 + access_cursor_)] = 1.0;
  } else if (stage_ == Stage::kJoinOp &&
             join_op_cursor_ < static_cast<int>(internal_nodes_.size())) {
    const JoinTreeNode* node =
        internal_nodes_[static_cast<size_t>(join_op_cursor_)];
    for (int rel : RelSetMembers(node->left->rels)) {
      extra[static_cast<size_t>(4 + rel)] =
          1.0 / (1.0 + node->left->DepthOf(rel));
    }
    for (int rel : RelSetMembers(node->right->rels)) {
      extra[static_cast<size_t>(4 + n + rel)] =
          1.0 / (1.0 + node->right->DepthOf(rel));
    }
  }
  features.insert(features.end(), extra.begin(), extra.end());
  return features;
}

std::vector<bool> FullPipelineEnv::ActionMask() const {
  std::vector<bool> mask(static_cast<size_t>(action_dim()), false);
  if (Done()) return mask;
  const int n = featurizer_->max_relations();

  if (stage_ == Stage::kJoinOrder) {
    const int live = static_cast<int>(subtrees_.size());
    bool any_connected = false;
    for (int x = 0; x < live; ++x) {
      for (int y = 0; y < live; ++y) {
        if (x == y) continue;
        bool connected =
            !query_->JoinPredsBetween(subtrees_[static_cast<size_t>(x)]->rels,
                                      subtrees_[static_cast<size_t>(y)]->rels)
                 .empty();
        if (connected) {
          any_connected = true;
          mask[static_cast<size_t>(x * n + y)] = true;
        } else if (config_.allow_cross_products) {
          mask[static_cast<size_t>(x * n + y)] = true;
        }
      }
    }
    if (!any_connected && !config_.allow_cross_products) {
      for (int x = 0; x < live; ++x) {
        for (int y = 0; y < live; ++y) {
          if (x != y) mask[static_cast<size_t>(x * n + y)] = true;
        }
      }
    }
    return mask;
  }
  if (stage_ == Stage::kAccessPath) {
    for (int a : ValidAccessActions(access_cursor_)) {
      mask[static_cast<size_t>(a)] = true;
    }
    return mask;
  }
  if (stage_ == Stage::kJoinOp) {
    for (int a : ValidJoinOpActions(
             *internal_nodes_[static_cast<size_t>(join_op_cursor_)])) {
      mask[static_cast<size_t>(a)] = true;
    }
    return mask;
  }
  // Aggregate stage.
  mask[0] = true;
  mask[1] = true;
  return mask;
}

StepResult FullPipelineEnv::Step(int action) {
  HFQ_CHECK(!Done());
  const int n = featurizer_->max_relations();
  StepResult result;

  switch (stage_) {
    case Stage::kJoinOrder: {
      int x = action / n;
      int y = action % n;
      const int live = static_cast<int>(subtrees_.size());
      HFQ_CHECK_MSG(x >= 0 && y >= 0 && x < live && y < live && x != y,
                    "invalid join-order action");
      int lo = std::min(x, y);
      int hi = std::max(x, y);
      auto left = std::move(subtrees_[static_cast<size_t>(x)]);
      auto right = std::move(subtrees_[static_cast<size_t>(y)]);
      subtrees_[static_cast<size_t>(lo)] =
          JoinTreeNode::Join(std::move(left), std::move(right));
      subtrees_.erase(subtrees_.begin() + hi);
      break;
    }
    case Stage::kAccessPath: {
      HFQ_CHECK_MSG(action >= 0 && action <= 2, "invalid access action");
      access_choice_[static_cast<size_t>(access_cursor_)] = action;
      ++access_cursor_;
      break;
    }
    case Stage::kJoinOp: {
      HFQ_CHECK_MSG(action >= 0 && action <= 3, "invalid join-op action");
      join_op_choice_[static_cast<size_t>(join_op_cursor_)] = action;
      ++join_op_cursor_;
      break;
    }
    case Stage::kAggregate: {
      HFQ_CHECK_MSG(action == 0 || action == 1, "invalid aggregate action");
      agg_choice_ = action;
      AdvanceStage();
      break;
    }
    case Stage::kDone:
      HFQ_CHECK_MSG(false, "Step after Done");
  }

  SkipTrivialDecisions();
  if (Done()) {
    result.done = true;
    result.reward = last_reward_;
  }
  return result;
}

bool FullPipelineEnv::Done() const {
  return stage_ == Stage::kDone && final_plan_ != nullptr;
}

std::unique_ptr<SearchEnv> FullPipelineEnv::CloneSearch() const {
  auto clone = std::make_unique<FullPipelineEnv>(featurizer_, expert_,
                                                 reward_, config_);
  clone->query_ = query_;
  clone->stage_ = stage_;
  clone->subtrees_.reserve(subtrees_.size());
  for (const auto& tree : subtrees_) {
    clone->subtrees_.push_back(tree->Clone());
  }
  if (tree_ != nullptr) {
    clone->tree_ = tree_->Clone();
    // Recomputing the post-order yields the same node sequence as the
    // original tree's, so join_op_choice_ indices keep their meaning.
    clone->tree_->InternalNodesPostOrder(&clone->internal_nodes_);
  }
  clone->access_choice_ = access_choice_;
  clone->join_op_choice_ = join_op_choice_;
  clone->agg_choice_ = agg_choice_;
  clone->access_cursor_ = access_cursor_;
  clone->join_op_cursor_ = join_op_cursor_;
  if (final_plan_ != nullptr) clone->final_plan_ = final_plan_->Clone();
  clone->last_reward_ = last_reward_;
  return clone;
}

bool FullPipelineEnv::TryCopySearchStateFrom(const SearchEnv& other) {
  const auto* src = dynamic_cast<const FullPipelineEnv*>(&other);
  if (src == nullptr || src == this) return false;
  // Full copy, wiring included, so a pooled env from any earlier search is
  // reusable — only the vectors' capacities survive from this object.
  // Equivalent to CloneSearch into existing storage.
  featurizer_ = src->featurizer_;
  expert_ = src->expert_;
  reward_ = src->reward_;
  config_ = src->config_;
  query_ = src->query_;
  stage_ = src->stage_;
  subtrees_.clear();
  subtrees_.reserve(src->subtrees_.size());
  for (const auto& tree : src->subtrees_) {
    subtrees_.push_back(tree->Clone());
  }
  internal_nodes_.clear();
  if (src->tree_ != nullptr) {
    tree_ = src->tree_->Clone();
    // Recomputing the post-order yields the same node sequence as the
    // source tree's, so join_op_choice_ indices keep their meaning.
    tree_->InternalNodesPostOrder(&internal_nodes_);
  } else {
    tree_.reset();
  }
  access_choice_ = src->access_choice_;
  join_op_choice_ = src->join_op_choice_;
  agg_choice_ = src->agg_choice_;
  access_cursor_ = src->access_cursor_;
  join_op_cursor_ = src->join_op_cursor_;
  final_plan_ =
      src->final_plan_ != nullptr ? src->final_plan_->Clone() : nullptr;
  last_reward_ = src->last_reward_;
  return true;
}

double FullPipelineEnv::FinalCost() const {
  return FinalPlan()->est_cost;
}

const PlanNode* FullPipelineEnv::FinalPlan() const {
  HFQ_CHECK(final_plan_ != nullptr);
  return final_plan_.get();
}

PlanNodePtr FullPipelineEnv::BuildScan(int rel) const {
  int choice = access_choice_[static_cast<size_t>(rel)];
  if (choice < 0) return expert_->BestAccessPath(*query_, rel);
  std::vector<int> sels = query_->SelectionsOn(rel);
  PlanNodePtr scan;
  if (choice == 0) {
    scan = MakeSeqScan(rel, sels);
  } else {
    IndexKind kind = choice == 1 ? IndexKind::kBTree : IndexKind::kHash;
    int pred = PickIndexPredicate(rel, kind);
    HFQ_CHECK_MSG(pred >= 0, "index choice without eligible predicate");
    std::vector<int> residual;
    for (int s : sels) {
      if (s != pred) residual.push_back(s);
    }
    const auto& sel = query_->selections[static_cast<size_t>(pred)];
    scan = MakeIndexScan(rel, kind, sel.column.column, pred, residual);
  }
  expert_->cost_model()->Annotate(*query_, scan.get());
  return scan;
}

PlanNodePtr FullPipelineEnv::BuildJoinNode(const JoinTreeNode& node,
                                           PlanNodePtr left,
                                           PlanNodePtr right,
                                           int decision_idx) {
  int choice = join_op_choice_[static_cast<size_t>(decision_idx)];
  if (choice < 0) {
    return expert_->BestJoin(*query_, std::move(left), std::move(right));
  }
  std::vector<int> preds =
      query_->JoinPredsBetween(node.left->rels, node.right->rels);
  PhysicalOp op = ActionToJoinOp(choice);
  PlanNodePtr join;
  if (op == PhysicalOp::kIndexNestedLoopJoin) {
    HFQ_CHECK(right->IsScan());
    int inner_rel = right->rel_idx;
    const auto& rel_ref = query_->relations[static_cast<size_t>(inner_rel)];
    int probe_pred = -1;
    IndexKind probe_kind = IndexKind::kHash;
    for (int pi : preds) {
      const auto& jp = query_->joins[static_cast<size_t>(pi)];
      const ColumnRef& inner_col =
          jp.left.rel_idx == inner_rel ? jp.left : jp.right;
      if (expert_->catalog()->FindIndex(rel_ref.table, inner_col.column,
                                        IndexKind::kHash) != nullptr) {
        probe_pred = pi;
        probe_kind = IndexKind::kHash;
        break;
      }
      if (expert_->catalog()->FindIndex(rel_ref.table, inner_col.column,
                                        IndexKind::kBTree) != nullptr) {
        probe_pred = pi;
        probe_kind = IndexKind::kBTree;
        break;
      }
    }
    HFQ_CHECK_MSG(probe_pred >= 0, "INLJ choice without index");
    // Convert the inner to a plain filtered probe scan.
    std::vector<int> all_sels = right->filter_sel_idxs;
    if (right->index_sel_idx >= 0) all_sels.push_back(right->index_sel_idx);
    PlanNodePtr probe_scan = MakeSeqScan(inner_rel, all_sels);
    probe_scan->index_kind = probe_kind;
    expert_->cost_model()->Annotate(*query_, probe_scan.get());
    join = MakeJoin(op, std::move(left), std::move(probe_scan), preds,
                    probe_pred);
  } else {
    join = MakeJoin(op, std::move(left), std::move(right), preds);
  }
  // Annotate this node (children already annotated).
  CostModel* cm = expert_->cost_model();
  const PlanNode* outer = join->child(0);
  const PlanNode* inner = join->child(1);
  join->est_rows = cm->cards()->Rows(*query_, join->rels);
  join->est_cost = cm->JoinCost(
      *query_, op, outer->est_rows, outer->est_cost, inner->est_rows,
      inner->est_cost, join->est_rows,
      op == PhysicalOp::kIndexNestedLoopJoin);
  return join;
}

PlanNodePtr FullPipelineEnv::BuildPlan() {
  HFQ_CHECK(tree_ != nullptr);
  int decision_idx = 0;
  // Post-order build matching internal_nodes_ ordering.
  struct Builder {
    FullPipelineEnv* env;
    int* decision_idx;
    PlanNodePtr Build(const JoinTreeNode& node) {
      if (node.IsLeaf()) return env->BuildScan(node.rel_idx);
      PlanNodePtr left = Build(*node.left);
      PlanNodePtr right = Build(*node.right);
      int idx = (*decision_idx)++;
      return env->BuildJoinNode(node, std::move(left), std::move(right), idx);
    }
  };
  Builder builder{this, &decision_idx};
  PlanNodePtr plan = builder.Build(*tree_);

  const bool has_agg =
      !query_->aggregates.empty() || !query_->group_by.empty();
  if (has_agg) {
    if (agg_choice_ < 0) {
      plan = expert_->AddAggregateIfNeeded(*query_, std::move(plan));
    } else {
      PhysicalOp op = agg_choice_ == 0 ? PhysicalOp::kHashAggregate
                                       : PhysicalOp::kSortAggregate;
      plan = MakeAggregate(op, std::move(plan));
      expert_->cost_model()->Annotate(*query_, plan.get());
    }
  }
  return plan;
}

double FullPipelineEnv::FinishEpisode() {
  final_plan_ = BuildPlan();
  last_reward_ = reward_->Score(*query_, final_plan_.get());
  return last_reward_;
}

Result<Episode> FullPipelineEnv::ExpertEpisode(const Query& query,
                                               const PlanNode& expert_plan) {
  SetQuery(&query);
  Reset();
  Episode episode;

  // Expert's logical tree and its internal nodes in post-order.
  std::unique_ptr<JoinTreeNode> expert_tree = ExtractJoinTree(expert_plan);
  std::vector<const JoinTreeNode*> expert_internal;
  expert_tree->InternalNodesPostOrder(&expert_internal);
  size_t next_internal = 0;

  while (!Done()) {
    Transition t;
    t.state = StateVector();
    t.mask = ActionMask();
    int action = -1;
    const int n = featurizer_->max_relations();

    switch (stage_) {
      case Stage::kJoinOrder: {
        if (next_internal >= expert_internal.size()) {
          return Status::Internal("expert tree exhausted during replay");
        }
        const JoinTreeNode* target = expert_internal[next_internal++];
        int x = -1, y = -1;
        for (size_t i = 0; i < subtrees_.size(); ++i) {
          if (subtrees_[i]->rels == target->left->rels) {
            x = static_cast<int>(i);
          }
          if (subtrees_[i]->rels == target->right->rels) {
            y = static_cast<int>(i);
          }
        }
        if (x < 0 || y < 0) {
          return Status::Internal("expert join not reachable in env state");
        }
        action = x * n + y;
        break;
      }
      case Stage::kAccessPath: {
        const PlanNode* scan = FindScanNode(expert_plan, access_cursor_);
        if (scan == nullptr) {
          return Status::Internal("expert plan missing scan node");
        }
        if (scan->op == PhysicalOp::kIndexScan) {
          action = scan->index_kind == IndexKind::kBTree ? 1 : 2;
        } else {
          action = 0;
        }
        // The expert may pick an index the env considers ineligible only if
        // catalogs diverge; fall back to seq scan in that case.
        if (!t.mask[static_cast<size_t>(action)]) action = 0;
        break;
      }
      case Stage::kJoinOp: {
        const JoinTreeNode* node =
            internal_nodes_[static_cast<size_t>(join_op_cursor_)];
        const PlanNode* join = FindJoinNode(expert_plan, node->rels);
        if (join == nullptr) {
          return Status::Internal("expert plan missing join node");
        }
        action = JoinOpToAction(join->op);
        if (!t.mask[static_cast<size_t>(action)]) {
          action = 2;  // Hash join: always valid when predicates exist.
          if (!t.mask[2]) action = 0;
        }
        break;
      }
      case Stage::kAggregate: {
        const PlanNode* root = &expert_plan;
        action = root->op == PhysicalOp::kSortAggregate ? 1 : 0;
        break;
      }
      case Stage::kDone:
        return Status::Internal("stepped past Done in expert replay");
    }

    // Record the mask with the expert action forced valid (forced cross
    // products can otherwise be masked).
    if (!t.mask[static_cast<size_t>(action)]) {
      t.mask[static_cast<size_t>(action)] = true;
    }
    t.action = action;
    t.old_prob = 1.0;
    Step(action);
    t.reward = 0.0;  // Outcomes are attached by the caller.
    episode.steps.push_back(std::move(t));
  }
  return episode;
}

}  // namespace hfq
