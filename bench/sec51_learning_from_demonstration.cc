// SEC51-LFD — Section 5.1, learning from demonstration: an agent
// pre-trained on the expert's episode histories (H_q, L_q) starts near
// expert quality, never pays for catastrophic plans, and can exceed the
// expert by exploiting its systemic errors; a tabula-rasa twin of the same
// learner (no demonstrations) pays a large exploration tax. Slips trigger
// re-training on the stored demonstrations (step 5 of the paper's recipe).
#include <algorithm>

#include "bench/bench_common.h"
#include "core/demonstration.h"
#include "core/full_env.h"

using namespace hfq;         // NOLINT
using namespace hfq::bench;  // NOLINT

namespace {

struct WindowStats {
  double mean = 0.0;
  double worst = 0.0;
};

WindowStats Summarize(const std::vector<double>& window) {
  WindowStats s;
  if (window.empty()) return s;
  for (double v : window) {
    s.mean += v;
    s.worst = std::max(s.worst, v);
  }
  s.mean /= static_cast<double>(window.size());
  return s;
}

}  // namespace

int main() {
  PrintHeader(
      "SEC51-LFD  learning from demonstration vs tabula rasa",
      "LfD starts near expert quality and avoids catastrophic plans; "
      "tabula-rasa DRL pays a huge exploration tax");

  auto engine = MakeEngine();
  std::vector<Query> workload =
      MakeLatencyWorkload(engine.get(), /*count=*/14, /*min_rels=*/5,
                          /*max_rels=*/8, /*seed=*/51);

  RejoinFeaturizer featurizer(8, &engine->estimator());
  NegLogLatencyReward reward(&engine->latency(), &engine->cost_model());

  double expert_mean = 0.0;
  for (const Query& q : workload) {
    auto expert = engine->RunExpert(q);
    HFQ_CHECK(expert.ok());
    expert_mean += expert->latency_ms;
  }
  expert_mean /= static_cast<double>(workload.size());

  const int kEpisodes = 900;
  const int kWindow = 100;

  // --- LfD learner: demonstrations + pre-training, then fine-tuning. ---
  FullPipelineEnv lfd_env(&featurizer, &engine->expert(), &reward);
  LfdConfig lfd_config;
  lfd_config.predictor.hidden_dims = {128, 128};
  lfd_config.pretrain_steps = 3000;
  // Footnote-3 exploration: "an action besides the one predicted to result
  // in the lowest latency may be selected with SMALL probability".
  lfd_config.epsilon_start = 0.05;
  lfd_config.epsilon_end = 0.01;
  DemonstrationLearner lfd(&lfd_env, engine.get(), lfd_config, 11);
  auto collected = lfd.CollectDemonstrations(workload);
  HFQ_CHECK(collected.ok());
  std::printf("collected %d expert (state, action) demonstrations; "
              "pre-training...\n",
              *collected);
  lfd.Pretrain();

  // --- Tabula rasa twin: same learner, no demonstrations. ---
  FullPipelineEnv tr_env(&featurizer, &engine->expert(), &reward);
  LfdConfig tr_config = lfd_config;
  tr_config.epsilon_start = 0.5;  // It must explore from nothing.
  tr_config.slip_window = 1 << 30;  // No demonstrations to fall back on.
  DemonstrationLearner tabula(&tr_env, engine.get(), tr_config, 13);

  std::printf("\n%-10s | %-22s | %-22s\n", "episodes",
              "LfD  mean%  worst-plan", "TabulaRasa mean%  worst");
  PrintRule(78);
  std::vector<double> lfd_window, tr_window;
  int slips = 0;
  for (int e = 0; e < kEpisodes; ++e) {
    const Query& q = workload[static_cast<size_t>(e) % workload.size()];
    LfdEpisodeStats ls = lfd.FineTuneEpisode(q);
    if (ls.slip_retrained) ++slips;
    LfdEpisodeStats ts = tabula.FineTuneEpisode(q);
    lfd_window.push_back(ls.latency_ms);
    tr_window.push_back(ts.latency_ms);
    if ((e + 1) % kWindow == 0) {
      WindowStats lw = Summarize(lfd_window);
      WindowStats tw = Summarize(tr_window);
      std::printf("%-10d | %7.0f%%  %8.0f ms | %8.0f%%  %8.0f ms\n", e + 1,
                  100.0 * lw.mean / expert_mean, lw.worst,
                  100.0 * tw.mean / expert_mean, tw.worst);
      std::fflush(stdout);
      lfd_window.clear();
      tr_window.clear();
    }
  }
  PrintRule(78);

  // Final greedy evaluation.
  double lfd_final = 0.0, tr_final = 0.0;
  int lfd_wins = 0;
  for (const Query& q : workload) {
    double lfd_ms = lfd.EvaluateQuery(q);
    double tr_ms = tabula.EvaluateQuery(q);
    auto expert = engine->RunExpert(q);
    HFQ_CHECK(expert.ok());
    lfd_final += lfd_ms;
    tr_final += tr_ms;
    if (lfd_ms < expert->latency_ms) ++lfd_wins;
  }
  lfd_final /= static_cast<double>(workload.size());
  tr_final /= static_cast<double>(workload.size());
  std::printf(
      "final greedy means: expert %.0f ms | LfD %.0f ms (%.0f%%, beats "
      "expert on %d/%zu) | tabula rasa %.0f ms (%.0f%%)\n",
      expert_mean, lfd_final, 100.0 * lfd_final / expert_mean, lfd_wins,
      workload.size(), tr_final, 100.0 * tr_final / expert_mean);
  std::printf("slip re-trainings triggered: %d\n", slips);
  return 0;
}
